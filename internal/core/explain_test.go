package core

import (
	"strings"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

func TestExplainPlaceable(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 1},
	})
	cl := smallCluster(4)
	e, err := Explain(w, cl, constraint.Assignment{}, "a/0")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Placeable() || e.Chosen != 0 {
		t.Errorf("fresh cluster: %+v", e)
	}
	if !strings.Contains(e.String(), "placeable") {
		t.Errorf("String = %q", e.String())
	}
}

func TestExplainUnknownContainer(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 1},
	})
	if _, err := Explain(w, smallCluster(2), constraint.Assignment{}, "ghost/0"); err == nil {
		t.Error("unknown container should fail")
	}
}

func TestExplainBlacklistBlockage(t *testing.T) {
	// Place blockers everywhere, then explain the blocked container.
	w := workload.MustNew([]*workload.App{
		{ID: "blocker", Demand: resource.Cores(1, 1024), Replicas: 2},
		{ID: "victim", Demand: resource.Cores(1, 1024), Replicas: 1, AntiAffinityApps: []string{"blocker"}},
	})
	cl := smallCluster(2)
	asg := constraint.Assignment{"blocker/0": 0, "blocker/1": 1}
	for id, m := range asg {
		var c *workload.Container
		for _, cc := range w.Containers() {
			if cc.ID == id {
				c = cc
			}
		}
		if err := cl.Machine(m).Allocate(c.ID, c.Demand); err != nil {
			t.Fatal(err)
		}
	}
	e, err := Explain(w, cl, asg, "victim/0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Placeable() {
		t.Fatalf("victim should be unplaceable: %+v", e)
	}
	if e.BlacklistRejected != 2 {
		t.Errorf("BlacklistRejected = %d, want 2", e.BlacklistRejected)
	}
	if len(e.SampleBlockers) == 0 {
		t.Fatal("sample blockers missing")
	}
	found := false
	for _, bl := range e.SampleBlockers {
		for _, app := range bl.Apps {
			if app == "blocker" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("blocking app not identified: %+v", e.SampleBlockers)
	}
	if !strings.Contains(e.String(), "UNPLACEABLE") {
		t.Errorf("String = %q", e.String())
	}
}

func TestExplainResourceExhaustion(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "whale", Demand: resource.Cores(64, 1024), Replicas: 1},
	})
	cl := smallCluster(4)
	e, err := Explain(w, cl, constraint.Assignment{}, "whale/0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Placeable() {
		t.Error("oversized container should be unplaceable")
	}
	// The aggregates prune everything: no machine is individually
	// examined.
	if e.PrunedSubClusters+e.PrunedRacks == 0 {
		t.Errorf("expected aggregate pruning: %+v", e)
	}
	if e.ResourceRejected != 0 {
		t.Errorf("aggregates should have pruned before per-machine checks: %+v", e)
	}
}

func TestExplainAgainstLiveSchedule(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(2, 2048), Replicas: 8, AntiAffinitySelf: true},
	})
	cl := smallCluster(4) // only 4 machines for 8 spread replicas
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 4 {
		t.Fatalf("undeployed = %d, want 4", len(res.Undeployed))
	}
	e, err := Explain(w, cl, res.Assignment, res.Undeployed[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Placeable() {
		t.Error("stranded spread replica should be unplaceable")
	}
	if e.BlacklistRejected != 4 {
		t.Errorf("all 4 machines should reject on anti-affinity, got %d", e.BlacklistRejected)
	}
}
