package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/parallel"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// noShard marks a container as placed on no shard.
const noShard int32 = -1

// coreShard is one slice of a sharded scheduler: a full single-core
// Session over a private sub-cluster partition of the parent
// topology.  mu guards sess and cluster — every call into either goes
// through it, so the single-threaded Session contract holds per shard
// while different shards run concurrently.
type coreShard struct {
	//aladdin:lock-level 20 per-shard session lock, taken under placeMu and before the wrapper mu
	mu      sync.Mutex
	sess    *Session
	cluster *topology.Cluster
}

// ShardedSession partitions the scheduler core along sub-cluster
// boundaries: each shard owns a contiguous run of sub-clusters as its
// own topology copy, flow network, tournament subtree, IL cache and
// scratch arena, so independent applications place concurrently with
// no shared mutable scheduler state.  Cross-shard anti-affinity needs
// no reconciliation protocol: blacklists are per-machine and the
// shards are machine-disjoint, so a constraint can only ever bind
// inside the shard whose machines it names.
//
// Lock order (see DESIGN.md §13): a shard's mu is taken before the
// wrapper's table lock mu, never after; placeMu serializes whole
// Place passes and is always outermost.  Place computes
// every shard's queue before the fan-out and merges results in shard
// index order, which is what makes the concurrent and sequential
// (Options.SequentialShards) modes byte-identical.
//
// Unlike Session, a ShardedSession is safe for concurrent use:
// Place/Remove/FailMachine/RecoverMachine may race from multiple
// goroutines (an HTTP server, a failure injector) and the session
// stays audit-clean.
type ShardedSession struct {
	opts   Options            //aladdin:lock-ok immutable after construction
	w      *workload.Workload //aladdin:lock-ok immutable after construction
	parent *topology.Cluster  //aladdin:lock-ok immutable after construction
	name   string             //aladdin:lock-ok immutable after construction

	// Each shard is guarded by its own mu; the slice itself is
	// immutable after construction.
	//
	//aladdin:lock-ok immutable slice; each shard guarded by its own mu
	//aladdin:domain shard -> _ shard index → shard
	shards []*coreShard

	// Immutable routing tables, built at construction.  The //aladdin:domain
	// directives declare each table's id spaces: "global" is a machine id
	// in the parent cluster, "machine" a machine id local to one shard's
	// topology copy, "shard" a shard index, "app" an app index in the
	// workload universe, and "ord" a container ordinal.

	//aladdin:lock-ok immutable after construction
	//aladdin:domain global -> shard owning shard of each global machine id
	ownerOf []int32

	//aladdin:lock-ok immutable after construction
	//aladdin:domain global -> machine global machine id → id inside its shard
	localOf []topology.MachineID

	//aladdin:lock-ok immutable after construction
	//aladdin:domain shard, machine -> global per-shard local → global machine id
	globalOf [][]topology.MachineID

	//aladdin:lock-ok immutable after construction
	//aladdin:domain app -> shard app index → home shard
	homeOf []int32

	//aladdin:lock-ok immutable after construction
	//aladdin:domain app -> _ app index → replicas fan out round-robin across shards
	spread []bool

	//aladdin:lock-ok immutable after construction
	//aladdin:domain ord -> shard container ordinal → first-try shard (homeOf/spread flattened)
	routeOf []int32

	byID map[string]*workload.Container //aladdin:lock-ok read-only container lookup

	// placeMu serializes Place: batches are admitted, fanned out and
	// merged one at a time, like the one scheduler manager per cluster
	// the paper assumes — sharding parallelises the inside of a batch,
	// not batches against each other.  Consolidation deliberately does
	// NOT take it: ConsolidateN drains in bounded per-shard chunks so
	// placements interleave with the sweep (see DESIGN.md §15).
	//
	//aladdin:lock-level 10 outermost: whole-batch serialization, taken before any shard mu
	placeMu sync.Mutex

	// mu guards the wrapper's global view: the submission ledger, the
	// shard each container is placed on, and batch-membership epochs.
	//
	//aladdin:lock-level 30 innermost: table updates only, taken after shard mus are released or inside merge
	mu sync.Mutex

	//aladdin:domain ord -> _ container ordinal → submission state
	ledger []uint8

	// strandedN counts ledgerStranded entries in the wrapper ledger
	// (guarded by mu).  The wrapper tracks strandedness itself —
	// shard-local marks cannot drive retries, because a stranded
	// container's feasible new home may live on another shard.
	strandedN int

	//aladdin:domain ord -> shard container ordinal → shard it is placed on (noShard if none)
	shardOf []int32

	batchEpoch uint32

	//aladdin:domain ord -> _ container ordinal → epoch of the batch that touched it
	inBatch []uint32
}

// NewSharded builds a sharded session over a workload universe and an
// empty cluster.  opts.Shards picks the shard count, clamped to
// [1, number of sub-clusters]; sub-cluster si goes to shard si·K/S,
// so shards own contiguous, near-equal runs of sub-clusters and each
// shard's machines keep the parent's traversal order.  The parent
// cluster is retained as the routing map only — allocations live on
// the per-shard topology copies (ShardClusters).
func NewSharded(opts Options, w *workload.Workload, cluster *topology.Cluster) (*ShardedSession, error) {
	subs := cluster.SubClusters()
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: sharded: cluster has no sub-clusters")
	}
	for _, m := range cluster.Machines() {
		if m.NumContainers() > 0 {
			return nil, fmt.Errorf("core: sharded: machine %s already hosts containers; sharding requires an empty cluster", m.Name)
		}
	}
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	if k > len(subs) {
		k = len(subs)
	}

	s := &ShardedSession{
		opts:     opts,
		w:        w,
		parent:   cluster,
		name:     fmt.Sprintf("%s+S%d", opts.Name(), k),
		ownerOf:  make([]int32, cluster.Size()),
		localOf:  make([]topology.MachineID, cluster.Size()),
		globalOf: make([][]topology.MachineID, k),
		byID:     make(map[string]*workload.Container, w.NumContainers()),
		ledger:   make([]uint8, w.NumContainers()),
		shardOf:  make([]int32, w.NumContainers()),
		inBatch:  make([]uint32, w.NumContainers()),
	}
	for i := range s.shardOf {
		s.shardOf[i] = noShard
	}
	for _, c := range w.Containers() {
		s.byID[c.ID] = c
	}

	specs := make([][]topology.MachineSpec, k)
	capCPU := make([]int64, k)
	for si, subName := range subs {
		shard := si * k / len(subs)
		sub := cluster.SubCluster(subName)
		for _, rackName := range sub.Racks {
			for _, gid := range cluster.Rack(rackName).Machines {
				m := cluster.Machine(gid)
				s.ownerOf[gid] = int32(shard)
				s.localOf[gid] = topology.MachineID(len(specs[shard]))
				s.globalOf[shard] = append(s.globalOf[shard], gid)
				capCPU[shard] += m.Capacity().Dim(resource.CPU)
				specs[shard] = append(specs[shard], topology.MachineSpec{
					Name: m.Name, Rack: m.Rack, Cluster: m.Cluster,
					Capacity: m.Capacity(), Down: !m.Up(),
				})
			}
		}
	}

	// Capacity-proportional home assignment: each application is
	// homed, in application index order, on the shard whose projected
	// load fraction (assigned CPU demand over shard CPU capacity) is
	// lowest.  Round-robin by count would overload the smaller shards
	// whenever the sub-cluster count does not divide evenly across k —
	// an overloaded shard pays the full rescue pipeline (migration,
	// defragmentation, preemption scans) per stranded container before
	// spilling, which dominates the run.  Cross-multiplied int64
	// comparison keeps the choice exact; ties break to the lowest
	// shard index, so the assignment is deterministic.
	apps := w.Apps()
	s.homeOf = make([]int32, len(apps))
	s.spread = make([]bool, len(apps))
	loads := make([]int64, k)

	// Dense self-anti-affine applications are spread, not homed: when
	// an app's replica count is within a factor of four of the smallest
	// shard's machine count, homing it would blacklist most of that
	// shard's machines, and every later placement search degenerates
	// into a scan over blacklisted candidates (then strands and repeats
	// the scan on the spill shards).  Fanning such replicas out
	// round-robin by container ordinal keeps the blacklist density low
	// on every shard, which is exactly what the whole-cluster scheduler
	// enjoys for free.  The routing stays deterministic in both
	// concurrency modes: it depends only on immutable workload
	// ordinals.
	minMachines := len(s.globalOf[0])
	for j := 1; j < k; j++ {
		if n := len(s.globalOf[j]); n < minMachines {
			minMachines = n
		}
	}
	for i, a := range apps {
		demand := a.Demand.Dim(resource.CPU) * int64(a.Replicas)
		if k > 1 && a.AntiAffinitySelf && int64(a.Replicas)*4 >= int64(minMachines) {
			s.spread[i] = true
			share := demand / int64(k)
			for j := range loads {
				loads[j] += share
			}
			continue
		}
		best := 0
		for j := 1; j < k; j++ {
			if (loads[j]+demand)*capCPU[best] < (loads[best]+demand)*capCPU[j] {
				best = j
			}
		}
		s.homeOf[i] = int32(best)
		loads[best] += demand
	}

	// Flatten the routing decision to one int32 per container ordinal:
	// admitBatch runs once per placed container, so it must not pay a
	// map probe (app index) per container.  Containers are app-major
	// in workload ordinal order, which is what makes the walk below
	// line up with the apps slice.
	s.routeOf = make([]int32, w.NumContainers())
	ord := 0
	for i, a := range apps {
		for r := 0; r < a.Replicas; r++ {
			if s.spread[i] {
				s.routeOf[ord] = int32(ord % k)
			} else {
				s.routeOf[ord] = s.homeOf[i]
			}
			ord++
		}
	}

	shardOpts := opts
	shardOpts.Shards = 0
	shardOpts.SequentialShards = false
	// The wrapper consumes shard results by ordinal (AssignedOrd), so
	// the shard sessions never need to build per-batch ID maps.
	shardOpts.LeanPlaceResult = true
	for i := 0; i < k; i++ {
		cl, err := topology.FromSpecs(specs[i])
		if err != nil {
			return nil, fmt.Errorf("core: sharded: shard %d topology: %w", i, err)
		}
		sess := NewSession(shardOpts, w, cl)
		// A shard cannot retry its own strandings — the feasible new
		// home may live on another shard — so the wrapper runs the
		// recovery sweep itself across all shards.
		sess.disableRecoverRetry = true
		s.shards = append(s.shards, &coreShard{
			sess:    sess,
			cluster: cl,
		})
	}
	// Every shard session seeded the shared up/down gauges from its
	// own slice, each overwrite clobbering the last; re-baseline them
	// to cluster totals.
	if opts.Metrics != nil {
		newCoreMetrics(opts.Metrics, opts.MetricLabels).initGauges(cluster)
	}
	return s, nil
}

// Name returns the paper-style scheduler name with a shard suffix,
// e.g. "Aladdin(16)+IL+DL+S8".
func (s *ShardedSession) Name() string { return s.name }

// NumShards returns the effective shard count after clamping.
func (s *ShardedSession) NumShards() int { return len(s.shards) }

// ShardClusters returns the per-shard topology copies that hold the
// live allocations (the parent cluster passed to NewSharded stays
// empty); callers aggregate utilization and usage across them.
func (s *ShardedSession) ShardClusters() []*topology.Cluster {
	out := make([]*topology.Cluster, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.cluster
	}
	return out
}

// workers returns the fan-out width for a Place pass: one goroutine
// per shard, capped at GOMAXPROCS — launching more shard goroutines
// than runnable cores would only interleave them, which distorts the
// per-shard critical-path timings without finishing any sooner.  A
// single in-order worker when the sequential oracle is forced.
func (s *ShardedSession) workers() int {
	if s.opts.SequentialShards {
		return 1
	}
	if n := runtime.GOMAXPROCS(0); n < len(s.shards) {
		return n
	}
	return len(s.shards)
}

// locate resolves a global machine id to (shard, shard-local id).
// The routing tables are immutable after construction, so no lock is
// needed.
//
//aladdin:domain global -> _
func (s *ShardedSession) locate(gid topology.MachineID) (*coreShard, topology.MachineID, error) {
	if int(gid) < 0 || int(gid) >= len(s.ownerOf) {
		return nil, topology.Invalid, fmt.Errorf("core: sharded: unknown machine %d", gid)
	}
	return s.shards[s.ownerOf[gid]], s.localOf[gid], nil
}

// routeShard picks the shard a container tries first: its app's home
// shard, or — for spread apps — a round-robin slot keyed by the
// container's immutable workload ordinal.  Reads only construction-
// time tables, so it needs no lock.
func (s *ShardedSession) routeShard(c *workload.Container) int32 {
	return s.routeOf[c.Ord]
}

// admitBatch validates a batch against the wrapper ledger and splits
// it into per-shard queues by the owning application's home shard.
// It is the sharded analogue of Session.Place's validation prologue
// and holds s.mu for its whole body.
func (s *ShardedSession) admitBatch(batch []*workload.Container) (queues [][]*workload.Container, epoch uint32, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchEpoch++
	epoch = s.batchEpoch
	queues = make([][]*workload.Container, len(s.shards))
	canon := s.w.Containers()
	for _, c := range batch {
		if c == nil {
			return nil, 0, fmt.Errorf("core: session: nil container in batch")
		}
		// Canonicalise only when the caller handed in a copy: batches
		// straight from the workload (the common case) pass the
		// pointer identity check and skip the map probe.
		if c.Ord < 0 || c.Ord >= len(canon) || canon[c.Ord] != c {
			cc := s.byID[c.ID]
			if cc == nil {
				return nil, 0, fmt.Errorf("core: session: container %s not in workload universe", c.ID)
			}
			c = cc
		}
		if s.ledger[c.Ord] == ledgerPlaced {
			return nil, 0, fmt.Errorf("core: session: container %s already placed", c.ID)
		}
		if s.inBatch[c.Ord] == epoch {
			return nil, 0, fmt.Errorf("core: session: container %s appears more than once in batch", c.ID)
		}
		s.inBatch[c.Ord] = epoch
		home := s.routeShard(c)
		queues[home] = append(queues[home], c)
	}
	return queues, epoch, nil
}

// setLedgerLocked writes a wrapper ledger entry, keeping the stranded
// count in sync.  Callers hold s.mu.
func (s *ShardedSession) setLedgerLocked(ord int, state uint8) {
	if s.ledger[ord] == ledgerStranded {
		s.strandedN--
	}
	if state == ledgerStranded {
		s.strandedN++
	}
	s.ledger[ord] = state
}

// markUndeployed records a stranding in the wrapper tables under s.mu.
func (s *ShardedSession) markUndeployed(ord int) {
	s.mu.Lock()
	s.setLedgerLocked(ord, ledgerUndeployed)
	s.shardOf[ord] = noShard
	s.mu.Unlock()
}

// markStranded records a failure-stranding in the wrapper tables under
// s.mu: like markUndeployed, but the container stays eligible for the
// automatic retry sweeps (RecoverMachine, RetryStranded).
func (s *ShardedSession) markStranded(ord int) {
	s.mu.Lock()
	s.setLedgerLocked(ord, ledgerStranded)
	s.shardOf[ord] = noShard
	s.mu.Unlock()
}

// shardBatch carries one shard's Place outcome across the fan-out
// barrier: everything is copied out of the shard session's scratch
// while its lock is still held.  Batch containers are reported by
// ordinal in queue order — no ID-keyed maps cross the barrier, so
// the merge costs array reads, not hash probes.
type shardBatch struct {
	placed     []int32               // batch ordinals placed by this call, queue order
	asg        []topology.MachineID  // global machine per placed entry
	stranded   []*workload.Container // batch containers left unplaced, queue order
	victims    []*workload.Container // re-queued earlier-batch victims this call stranded
	migrations int
	preempts   int
	work       int64
	elapsed    time.Duration // this shard's own placement + merge time
	err        error
}

// placeOnShard runs one queue through one shard under its lock and
// merges the outcome into the wrapper tables before the lock drops,
// so a concurrent FailMachine on the same shard always observes
// ledger and session in agreement.  epoch identifies the admitted
// batch, separating stranded batch members from re-queued preemption
// victims of earlier batches.
func (s *ShardedSession) placeOnShard(k int, queue []*workload.Container, epoch uint32) shardBatch {
	sh := s.shards[k]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t0 := s.opts.now()
	res, err := sh.sess.Place(queue)
	out := shardBatch{err: err}
	if res == nil {
		return out
	}
	out.migrations, out.preempts, out.work = res.Migrations, res.Preemptions, res.WorkUnits
	// Batch members were validated unplaced at admission, so a live
	// assignment now means this call placed them.  On a mid-batch
	// error the untried tail lands in stranded, matching the
	// "partial result plus error" contract of Session.Place.
	for _, c := range queue {
		if lm := sh.sess.AssignedOrd(c.Ord); lm != topology.Invalid {
			out.placed = append(out.placed, int32(c.Ord))
			out.asg = append(out.asg, s.globalOf[k][lm])
		} else {
			out.stranded = append(out.stranded, c)
		}
	}
	// res.Undeployed holds the session-stranded containers: batch
	// members (already collected above) plus displaced victims from
	// earlier batches.  Both get their wrapper ledger entry below;
	// strandings are rare, so the ID probes here are off the hot path.
	s.mu.Lock()
	for _, ord := range out.placed {
		s.setLedgerLocked(int(ord), ledgerPlaced)
		s.shardOf[ord] = int32(k)
	}
	s.mu.Unlock()
	for _, id := range res.Undeployed {
		c := s.byID[id]
		if c == nil {
			continue
		}
		if !s.isInBatch(c.Ord, epoch) {
			out.victims = append(out.victims, c)
		}
		s.markUndeployed(c.Ord)
	}
	out.elapsed = s.opts.now().Sub(t0)
	return out
}

// Place schedules a batch across the shards: containers are routed to
// their application's home shard, all shard queues run concurrently
// (or in shard order under SequentialShards), and containers a full
// home shard strands get one serial spill pass over the other shards
// in index order.  The returned Result is freshly allocated — unlike
// Session.Place it has no scratch-invalidation window.  Result.Elapsed
// reports the batch's critical path (serial sections plus the slowest
// shard); Result.WallElapsed reports this host's wall-clock.
func (s *ShardedSession) Place(batch []*workload.Container) (*sched.Result, error) {
	start := s.opts.now()
	s.placeMu.Lock()
	defer s.placeMu.Unlock()

	queues, epoch, err := s.admitBatch(batch)
	if err != nil {
		return nil, err
	}
	nBatch := 0
	for _, q := range queues {
		nBatch += len(q)
	}

	slots := make([]shardBatch, len(s.shards))
	fanStart := s.opts.now()
	parallel.ForEach(len(s.shards), s.workers(), func(k int) {
		if len(queues[k]) == 0 {
			return
		}
		slots[k] = s.placeOnShard(k, queues[k], epoch)
	})
	fanWall := s.opts.now().Sub(fanStart)

	// Merge in shard index order: identical in concurrent and
	// sequential modes because each slot is fully determined by its
	// own shard's (deterministic) run.  Pending collects this batch's
	// strandings (shard order, queue order within a shard — the same
	// sequence the old per-queue rescan produced) followed by
	// re-queued victims; everything else is already placed, so the
	// pass below never revisits the happy-path containers.
	res := &sched.Result{Scheduler: s.name}
	if !s.opts.LeanPlaceResult {
		res.Assignment = make(constraint.Assignment, nBatch)
	}
	canon := s.w.Containers()
	var errs []error
	var pending []*workload.Container
	var slowest time.Duration
	for k := range slots {
		if slots[k].err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", k, slots[k].err))
		}
		if res.Assignment != nil {
			for i, ord := range slots[k].placed {
				res.Assignment[canon[ord].ID] = slots[k].asg[i]
			}
		}
		res.Migrations += slots[k].migrations
		res.Preemptions += slots[k].preempts
		res.WorkUnits += slots[k].work
		if slots[k].elapsed > slowest {
			slowest = slots[k].elapsed
		}
		pending = append(pending, slots[k].stranded...)
	}
	for k := range slots {
		pending = append(pending, slots[k].victims...)
	}

	// Spill pass: stranded containers retry the other shards in index
	// order — batch containers first (batch order), then re-queued
	// preemption victims from earlier batches (shard order).  Each
	// shard takes every remaining stranding as one queue, which
	// places the same containers as spilling them one at a time (a
	// shard session processes its queue serially, in order) but
	// amortises the per-call overhead and lets isomorphism limiting
	// short-circuit sibling spills.  Serial and deterministic in both
	// concurrency modes; errors abort further spills.
	if len(errs) == 0 {
		for k2 := 0; k2 < len(s.shards) && len(pending) > 0; k2++ {
			queue := pending[:0:0]
			for _, c := range pending {
				if s.routeShard(c) != int32(k2) {
					queue = append(queue, c)
				}
			}
			if len(queue) == 0 {
				continue
			}
			sb := s.placeOnShard(k2, queue, epoch)
			if sb.err != nil {
				errs = append(errs, fmt.Errorf("spill shard %d: %w", k2, sb.err))
				break
			}
			res.Migrations += sb.migrations
			res.Preemptions += sb.preempts
			res.WorkUnits += sb.work
			if len(sb.placed) == 0 {
				continue
			}
			landed := make(map[int]bool, len(sb.placed))
			for i, ord := range sb.placed {
				landed[int(ord)] = true
				if res.Assignment != nil && s.isInBatch(int(ord), epoch) {
					res.Assignment[canon[ord].ID] = sb.asg[i]
				}
			}
			next := pending[:0]
			for _, c := range pending {
				if !landed[c.Ord] {
					next = append(next, c)
				}
			}
			pending = next
		}
	}

	// Final undeployed view: whatever survived the spill pass, still
	// in batch order then victim order.  Victims were not part of the
	// admitted batch, so each one stranded grows the total.
	res.Total = nBatch
	for _, c := range pending {
		res.Undeployed = append(res.Undeployed, c.ID)
		if !s.isInBatch(c.Ord, epoch) {
			res.Total++
		}
	}
	// Elapsed is the batch's critical path: the serial sections
	// (admission, merge, spill, bookkeeping) at wall-clock plus the
	// slowest shard of the fan-out — the placements inside the fan-out
	// are independent by construction, so the critical path is what a
	// host with one core per shard spends.  WallElapsed keeps this
	// host's actual wall-clock; the two coincide when GOMAXPROCS
	// covers the shard count.
	res.WallElapsed = s.opts.now().Sub(start)
	res.Elapsed = res.WallElapsed - fanWall + slowest
	return res, errors.Join(errs...)
}

// isPlaced reads the wrapper ledger under s.mu.
func (s *ShardedSession) isPlaced(ord int) bool {
	s.mu.Lock()
	p := s.ledger[ord] == ledgerPlaced
	s.mu.Unlock()
	return p
}

// isInBatch reports whether the container was part of the epoch's
// admitted batch, under s.mu.
func (s *ShardedSession) isInBatch(ord int, epoch uint32) bool {
	s.mu.Lock()
	in := s.inBatch[ord] == epoch
	s.mu.Unlock()
	return in
}

// Placed reports whether the container is currently deployed on any
// shard.
func (s *ShardedSession) Placed(containerID string) bool {
	c := s.byID[containerID]
	if c == nil {
		return false
	}
	return s.isPlaced(c.Ord)
}

// Assignment merges the shards' container→machine maps into one
// freshly-allocated map in the parent cluster's machine-id space.
func (s *ShardedSession) Assignment() constraint.Assignment {
	out := make(constraint.Assignment)
	for k, sh := range s.shards {
		sh.mu.Lock()
		for id, lm := range sh.sess.Assignment() {
			out[id] = s.globalOf[k][lm]
		}
		sh.mu.Unlock()
	}
	return out
}

// Remove departs a container from whichever shard hosts it.
func (s *ShardedSession) Remove(containerID string) error {
	c := s.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	for {
		s.mu.Lock()
		owner := s.shardOf[c.Ord]
		s.mu.Unlock()
		if owner == noShard {
			return fmt.Errorf("core: session: container %s not placed", containerID)
		}
		sh := s.shards[owner]
		sh.mu.Lock()
		s.mu.Lock()
		moved := s.shardOf[c.Ord] != owner
		s.mu.Unlock()
		if moved {
			// Lost a race with a failure eviction or re-placement;
			// re-resolve the owner.
			sh.mu.Unlock()
			continue
		}
		err := sh.sess.Remove(containerID)
		if err == nil {
			s.markUndeployed(c.Ord)
		}
		sh.mu.Unlock()
		return err
	}
}

// FailMachine routes a machine loss to its owning shard: the eviction
// and the priority-ordered re-placement both stay inside that shard's
// domain (stranded containers may later spill through Place).  The
// result's machine id is translated back to the parent space.
func (s *ShardedSession) FailMachine(gid topology.MachineID) (*FailureResult, error) {
	sh, lid, lerr := s.locate(gid)
	if lerr != nil {
		return nil, lerr
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	res, err := sh.sess.FailMachine(lid)
	if res != nil {
		res.Machine = gid
		for _, id := range res.Stranded {
			if c := s.byID[id]; c != nil {
				s.markStranded(c.Ord)
			}
		}
	}
	return res, err
}

// RecoverMachine returns a failed machine to its shard's service,
// then runs the wrapper's stranded-container retry sweep: every
// failure-stranded container re-enters the normal Place pipeline one
// at a time (home shard first, spilling across the others), so the
// recovered capacity — and any other capacity that freed up since the
// failure — is put back to work.  The sweep is unbudgeted, like the
// single-session recovery path.
func (s *ShardedSession) RecoverMachine(gid topology.MachineID) (*RecoverResult, error) {
	start := s.opts.now()
	sh, lid, lerr := s.locate(gid)
	if lerr != nil {
		return nil, lerr
	}
	sh.mu.Lock()
	res, err := sh.sess.RecoverMachine(lid)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	res.Machine = gid
	rr, rerr := s.RetryStranded(0)
	if rr != nil {
		res.Retried = rr.Retried
		res.Replaced = rr.Replaced
		res.Migrations = rr.Migrations
		res.Preemptions = rr.Preemptions
	}
	res.Elapsed = s.opts.now().Sub(start)
	return res, rerr
}

// RetryStranded re-submits failure-stranded containers through the
// wrapper's Place pipeline in priority order, one container per call
// so shard locks release between attempts.  budget caps rescue moves
// (migrations plus preemptions) per sweep; it is enforced per shard
// session, so a single attempt that spills across shards may overshoot
// by the moves the extra shards spend (0 = unlimited).  Containers
// that still fit nowhere stay stranded for the next sweep.
func (s *ShardedSession) RetryStranded(budget int) (*RetryResult, error) {
	res := &RetryResult{}
	s.mu.Lock()
	var queue []*workload.Container
	if s.strandedN > 0 {
		cs := s.w.Containers()
		queue = make([]*workload.Container, 0, s.strandedN)
		for ord, st := range s.ledger {
			if st == ledgerStranded {
				queue = append(queue, cs[ord])
			}
		}
	}
	s.mu.Unlock()
	if len(queue) == 0 {
		return res, nil
	}
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].Priority != queue[j].Priority {
			return queue[i].Priority > queue[j].Priority
		}
		return queue[i].Ord < queue[j].Ord
	})
	remaining := budget
	for _, c := range queue {
		if budget > 0 && remaining <= 0 {
			break
		}
		if s.isPlaced(c.Ord) {
			continue // lost a race with a concurrent placement
		}
		res.Retried++
		if budget > 0 {
			s.setShardMoveBudgets(remaining)
		}
		pr, err := s.Place([]*workload.Container{c})
		if budget > 0 {
			s.setShardMoveBudgets(0)
		}
		if err != nil {
			if errors.Is(err, ErrStateCorruption) {
				return res, err
			}
			// A benign admission race (e.g. the container landed via a
			// concurrent Place between our check and the call): skip it.
			continue
		}
		res.Migrations += pr.Migrations
		res.Preemptions += pr.Preemptions
		if budget > 0 {
			remaining -= pr.Migrations + pr.Preemptions
		}
		placed := true
		for _, id := range pr.Undeployed {
			if id == c.ID {
				placed = false
			}
			// Whatever the attempt left undeployed — the retried
			// container or a collateral victim — stays stranded.
			if cc := s.byID[id]; cc != nil && !s.isPlaced(cc.Ord) {
				s.markStranded(cc.Ord)
			}
		}
		if placed {
			res.Replaced = append(res.Replaced, c.ID)
		}
	}
	return res, nil
}

// setShardMoveBudgets installs (or clears, cap <= 0) a rescue-move
// budget on every shard session.  While installed, concurrent Place
// batches share the cap — an acceptable, transient narrowing during a
// budgeted retry attempt.
func (s *ShardedSession) setShardMoveBudgets(cap int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.sess.r.setMoveBudget(cap)
		sh.mu.Unlock()
	}
}

// consolidateChunk is how many container moves a sharded consolidation
// performs per shard-lock acquisition: large enough to amortise the
// drain pass's candidate scan, small enough that concurrent Place and
// failure traffic never waits behind a whole-shard drain.
const consolidateChunk = 64

// Consolidate drains every shard in index order and returns the total
// migrations performed.  Consolidation never crosses a shard
// boundary: moves stay within each shard's machines, so ownership
// tables are unaffected.
func (s *ShardedSession) Consolidate() (int, error) {
	r, err := s.ConsolidateN(0)
	return r.Moves, err
}

// ConsolidateN drains the shards incrementally under a move budget (0
// = unlimited).  Unlike Place it never takes placeMu, and each shard's
// lock is held only for one bounded chunk of moves at a time, so
// concurrent Place/Remove/Fail/Recover traffic interleaves with the
// sweep instead of stalling behind it.  Result.More reports whether
// drain work (possibly infeasible — the signal is conservative)
// remained when the budget ran out; a later call resumes it.
func (s *ShardedSession) ConsolidateN(budget int) (ConsolidateResult, error) {
	var out ConsolidateResult
	remaining := budget
	for _, sh := range s.shards {
		chunk := consolidateChunk
		for {
			if budget > 0 && remaining <= 0 {
				out.More = true
				return out, nil
			}
			n := chunk
			if budget > 0 && n > remaining {
				n = remaining
			}
			sh.mu.Lock()
			r, err := sh.sess.ConsolidateN(n)
			sh.mu.Unlock()
			out.Moves += r.Moves
			if budget > 0 {
				remaining -= r.Moves
			}
			if err != nil {
				return out, err
			}
			if !r.More {
				break // shard fully consolidated
			}
			if r.Moves == 0 {
				// Every remaining drainable machine on this shard holds
				// more residents than the chunk allows.  Grow the chunk
				// until one fits — unless the sweep budget itself is the
				// binding cap, in which case this shard must wait for a
				// future sweep.
				if budget > 0 && n >= remaining {
					out.More = true
					break
				}
				chunk *= 2
			}
		}
	}
	return out, nil
}

// PackingStats aggregates placement quality across the shard clusters.
func (s *ShardedSession) PackingStats() PackingStats {
	var a packingAccum
	for _, sh := range s.shards {
		sh.mu.Lock()
		a.add(sh.cluster)
		sh.mu.Unlock()
	}
	s.mu.Lock()
	n := s.strandedN
	s.mu.Unlock()
	return a.finish(n)
}

// StrandedIDs lists the failure-stranded containers in workload
// ordinal order, from the wrapper ledger.
func (s *ShardedSession) StrandedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.strandedN == 0 {
		return nil
	}
	out := make([]string, 0, s.strandedN)
	cs := s.w.Containers()
	for ord, st := range s.ledger {
		if st == ledgerStranded {
			out = append(out, cs[ord].ID)
		}
	}
	return out
}

// Forget clears a container's failure-stranded mark in the wrapper
// ledger; see Session.Forget.
func (s *ShardedSession) Forget(containerID string) error {
	c := s.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger[c.Ord] == ledgerPlaced {
		return fmt.Errorf("core: session: container %s is placed; use Remove", containerID)
	}
	if s.ledger[c.Ord] == ledgerStranded {
		s.setLedgerLocked(c.Ord, ledgerUndeployed)
	}
	return nil
}

// Audit re-checks every shard's live placement for constraint
// violations; a healthy sharded session returns an empty slice.
func (s *ShardedSession) Audit() []constraint.Violation {
	var out []constraint.Violation
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.sess.Audit()...)
		sh.mu.Unlock()
	}
	return out
}

// FlowConservation verifies Equation 2 on every shard's network.
func (s *ShardedSession) FlowConservation() error {
	for k, sh := range s.shards {
		sh.mu.Lock()
		err := sh.sess.FlowConservation()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
	}
	return nil
}

// AuditInvariants runs the full runtime Auditor on every shard and
// then cross-checks the wrapper's own tables: each container the
// ledger calls placed must be live on exactly the shard the ownership
// table names, and on no other.  Results carry a "shard k:" prefix so
// a violation localises immediately.  Like the per-shard audits it
// wraps, this is meant to run quiesced (between operations, or after
// concurrent load has drained).
func (s *ShardedSession) AuditInvariants() []AuditViolation {
	var out []AuditViolation
	for k, sh := range s.shards {
		sh.mu.Lock()
		vs := sh.sess.AuditInvariants()
		sh.mu.Unlock()
		for _, v := range vs {
			out = append(out, AuditViolation{Kind: v.Kind, Detail: fmt.Sprintf("shard %d: %s", k, v.Detail)})
		}
	}
	containers := s.w.Containers()
	s.mu.Lock()
	ledger := append([]uint8(nil), s.ledger...)
	shardOf := append([]int32(nil), s.shardOf...)
	s.mu.Unlock()
	for k, sh := range s.shards {
		sh.mu.Lock()
		for _, c := range containers {
			got := sh.sess.Placed(c.ID)
			want := ledger[c.Ord] == ledgerPlaced && shardOf[c.Ord] == int32(k)
			if got != want {
				out = append(out, AuditViolation{
					Kind: AuditAssignmentDrift,
					Detail: fmt.Sprintf("shard %d: container %s: shard session placed=%v, wrapper ledger=%d ownership=%d",
						k, c.ID, got, ledger[c.Ord], shardOf[c.Ord]),
				})
			}
		}
		sh.mu.Unlock()
	}
	return out
}
