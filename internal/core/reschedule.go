package core

import (
	"fmt"
	"sort"
	"time"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// This file is the continuous-rescheduling face of the session: the
// budgeted consolidation entry points, the stranded-container retry
// sweep that RecoverMachine and the background rebalancer share, and
// the packing statistics the rebalancer's triggers read.  Everything
// here warm-starts from the live flow network and search index — no
// state is rebuilt, so the cost of a call is proportional to the
// moves it makes, not to the cluster size.

// ConsolidateResult reports one budgeted consolidation call.
type ConsolidateResult struct {
	// Moves counts the containers relocated by this call.
	Moves int `json:"moves"`
	// More is set when eligible drain work remained beyond the
	// budget; a later call can resume it.  It is conservative: a
	// skipped machine may turn out undrainable when attempted.
	More bool `json:"more"`
}

// RetryResult reports one stranded-container retry sweep.
type RetryResult struct {
	// Retried counts the stranded containers the sweep attempted.
	Retried int `json:"retried"`
	// Replaced lists the retried containers that found a new home.
	Replaced []string `json:"replaced,omitempty"`
	// Migrations and Preemptions are the rescue moves the sweep
	// spent; under a budget their sum never exceeds it.
	Migrations  int `json:"migrations"`
	Preemptions int `json:"preemptions"`
}

// RecoverResult reports one RecoverMachine call, including the
// automatic stranded-container retry it runs.
type RecoverResult struct {
	Machine topology.MachineID `json:"machine"`
	// Retried / Replaced / Migrations / Preemptions describe the
	// stranded retry sweep (all zero when nothing was stranded).
	Retried     int           `json:"retried"`
	Replaced    []string      `json:"replaced,omitempty"`
	Migrations  int           `json:"migrations"`
	Preemptions int           `json:"preemptions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// PackingStats is a cheap point-in-time summary of placement quality,
// read by the rebalancer to decide whether a cycle is worth running.
type PackingStats struct {
	// Machines is the cluster size; Used counts up machines hosting
	// at least one container; Down counts machines out of service.
	Machines int `json:"machines"`
	Used     int `json:"used"`
	Down     int `json:"down"`
	// MeanUtilization is the mean CPU utilization across up machines
	// in [0, 1].
	MeanUtilization float64 `json:"mean_utilization"`
	// FreeCPU is the total free CPU across up machines and
	// LargestFreeCPU the biggest single-machine slab of it — their
	// ratio is the fragmentation signal (free capacity that exists
	// but is shattered across machines).
	FreeCPU        int64 `json:"free_cpu"`
	LargestFreeCPU int64 `json:"largest_free_cpu"`
	// Stranded counts containers knocked out by machine failures and
	// still waiting for a feasible home.
	Stranded int `json:"stranded"`
}

// packingAccum folds one or more clusters (the sharded session owns a
// cluster per shard) into a PackingStats.
type packingAccum struct {
	ps      PackingStats
	utilSum float64
	up      int
}

// add folds one cluster's machines into the accumulator.  The
// utilization ratio is a reporting metric, never an allocation
// decision; every capacity aggregate here stays exact int64.
//
//aladdin:float-ok reporting metric, not capacity accounting
func (a *packingAccum) add(cluster *topology.Cluster) {
	a.ps.Machines += cluster.Size()
	for _, m := range cluster.Machines() {
		if !m.Up() {
			a.ps.Down++
			continue
		}
		a.up++
		if m.NumContainers() > 0 {
			a.ps.Used++
		}
		free := m.Free().Dim(resource.CPU)
		cap := m.Capacity().Dim(resource.CPU)
		a.ps.FreeCPU += free
		if free > a.ps.LargestFreeCPU {
			a.ps.LargestFreeCPU = free
		}
		if cap > 0 {
			a.utilSum += float64(cap-free) / float64(cap)
		}
	}
}

// finish closes out the accumulator, averaging the per-machine
// utilization ratios across up machines.
//
//aladdin:float-ok reporting metric, not capacity accounting
func (a *packingAccum) finish(stranded int) PackingStats {
	a.ps.Stranded = stranded
	if a.up > 0 {
		a.ps.MeanUtilization = a.utilSum / float64(a.up)
	}
	return a.ps
}

// PackingStats summarises the session's current placement quality.
func (s *Session) PackingStats() PackingStats {
	var a packingAccum
	a.add(s.cluster)
	return a.finish(s.strandedN)
}

// ConsolidateN runs the machine-draining consolidation pass with a
// per-call move budget: at most budget containers relocate (0 =
// unlimited).  Result.More reports whether drain work remained; a
// later call resumes it, so interleaving callers (the rebalancer, the
// HTTP handler) can spread a full sweep across cycles without ever
// holding the session for an unbounded pass.  A non-nil error is a
// CorruptionError: a drain's rollback failed and the session state
// can no longer be trusted.
func (s *Session) ConsolidateN(budget int) (ConsolidateResult, error) {
	moves, more, err := s.r.consolidateBudget(budget)
	return ConsolidateResult{Moves: moves, More: more}, err
}

// RetryStranded re-submits every failure-stranded container through
// the shared placement pipeline in priority order (highest first),
// spending at most budget rescue moves — migrations plus preemption
// evictions; direct placements are free (0 = unlimited).  Containers
// that still fit nowhere stay stranded for the next sweep.
func (s *Session) RetryStranded(budget int) (*RetryResult, error) {
	res := &RetryResult{}
	if s.strandedN == 0 {
		return res, nil
	}
	r := s.r
	cs := s.w.Containers()
	queue := make([]*workload.Container, 0, s.strandedN)
	for ord, st := range s.ledger {
		if st == ledgerStranded {
			queue = append(queue, cs[ord])
		}
	}
	// Highest priority first, exactly like FailMachine's re-placement:
	// scarce capacity goes to the containers whose weighted flows
	// dominate.
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].Priority != queue[j].Priority {
			return queue[i].Priority > queue[j].Priority
		}
		return queue[i].Ord < queue[j].Ord
	})
	res.Retried = len(queue)
	migBefore, preBefore := r.migrations, r.preempts
	r.setMoveBudget(budget)
	undep, err := s.placeQueue(queue, nil)
	r.setMoveBudget(0)
	res.Migrations = r.migrations - migBefore
	res.Preemptions = r.preempts - preBefore
	// Whatever the sweep left undeployed — retried containers that
	// still fit nowhere and collateral preemption victims alike —
	// stays stranded so the next sweep picks it up.
	for _, cid := range undep {
		if c := r.byID[cid]; c != nil && s.ledger[c.Ord] == ledgerUndeployed {
			s.setLedger(c.Ord, ledgerStranded)
		}
	}
	for _, c := range queue[:res.Retried] {
		if s.ledger[c.Ord] == ledgerPlaced {
			res.Replaced = append(res.Replaced, c.ID)
		}
	}
	return res, err
}

// StrandedIDs lists the failure-stranded containers in workload
// ordinal order.  The slice is freshly allocated; callers may keep it.
func (s *Session) StrandedIDs() []string {
	if s.strandedN == 0 {
		return nil
	}
	out := make([]string, 0, s.strandedN)
	cs := s.w.Containers()
	for ord, st := range s.ledger {
		if st == ledgerStranded {
			out = append(out, cs[ord].ID)
		}
	}
	return out
}

// Forget clears a container's failure-stranded mark so retry sweeps
// stop attempting it — the online simulator calls it when a stranded
// container's application departs.  Forgetting a placed container is
// an error (use Remove); forgetting a container that is not stranded
// is a no-op.
func (s *Session) Forget(containerID string) error {
	c := s.r.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	if s.ledger[c.Ord] == ledgerPlaced {
		return fmt.Errorf("core: session: container %s is placed; use Remove", containerID)
	}
	if s.ledger[c.Ord] == ledgerStranded {
		s.setLedger(c.Ord, ledgerUndeployed)
	}
	return nil
}
