package core

import (
	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// aggregates caches, per rack and per sub-cluster, the component-wise
// maximum free vector over member machines.  They realise the R and G
// tiers' residual capacities: if a demand does not fit a rack's
// maximum free vector, no path through that rack exists and the whole
// subtree is pruned — the latency win of the tiered network (§III.A).
type aggregates struct {
	cluster     *topology.Cluster
	rackMaxFree map[string]resource.Vector
	subMaxFree  map[string]resource.Vector
}

func newAggregates(cluster *topology.Cluster) *aggregates {
	a := &aggregates{
		cluster:     cluster,
		rackMaxFree: make(map[string]resource.Vector, len(cluster.Racks())),
		subMaxFree:  make(map[string]resource.Vector, len(cluster.SubClusters())),
	}
	for _, rname := range cluster.Racks() {
		a.recomputeRack(rname)
	}
	for _, gname := range cluster.SubClusters() {
		a.recomputeSub(gname)
	}
	return a
}

func (a *aggregates) recomputeRack(rname string) {
	rack := a.cluster.Rack(rname)
	var maxFree resource.Vector
	for _, mid := range rack.Machines {
		maxFree = maxFree.Max(a.cluster.Machine(mid).Free())
	}
	a.rackMaxFree[rname] = maxFree
}

func (a *aggregates) recomputeSub(gname string) {
	sub := a.cluster.SubCluster(gname)
	var maxFree resource.Vector
	for _, rname := range sub.Racks {
		maxFree = maxFree.Max(a.rackMaxFree[rname])
	}
	a.subMaxFree[gname] = maxFree
}

// update refreshes aggregates after machine m's free vector changed.
func (a *aggregates) update(m topology.MachineID) {
	machine := a.cluster.Machine(m)
	a.recomputeRack(machine.Rack)
	a.recomputeSub(machine.Cluster)
}

// rackAdmits reports whether some machine in the rack might fit the
// demand (conservative per-dimension check).
func (a *aggregates) rackAdmits(rname string, demand resource.Vector) bool {
	return demand.Fits(a.rackMaxFree[rname])
}

// subAdmits is the sub-cluster analogue.
func (a *aggregates) subAdmits(gname string, demand resource.Vector) bool {
	return demand.Fits(a.subMaxFree[gname])
}

// ilCache is the isomorphism-limiting memo (§IV.A, Fig. 5a): all
// containers of an application are isomorphic, so once one of them
// proves unplaceable — no valid path through the whole network, even
// after migration and defragmentation — its siblings cannot do better
// and skip the search outright.  An entry stays valid until any
// capacity is released (placements only shrink free space and grow
// blacklists, so they can never make an infeasible sibling feasible;
// releases can).
type ilCache struct {
	// releaseGen counts capacity releases (unplace/evict).
	releaseGen uint64
	// failed[app] is the releaseGen at which the app was proven
	// unplaceable.
	failed map[string]uint64
}

func newILCache() *ilCache {
	return &ilCache{failed: make(map[string]uint64)}
}

// bump invalidates all cached failures (some capacity was released).
func (il *ilCache) bump() { il.releaseGen++ }

// skip reports whether the app was already proven unplaceable at the
// current generation.
func (il *ilCache) skip(app string) bool {
	g, ok := il.failed[app]
	return ok && g == il.releaseGen
}

// note records that the app is unplaceable at the current generation.
func (il *ilCache) note(app string) {
	il.failed[app] = il.releaseGen
}

// searcher walks the tiered network looking for an augmenting path
// for one container: the getShortestPath of Algorithm 1, with IL and
// DL as the paper's two break conditions (lines 23–29).
type searcher struct {
	opts      Options
	cluster   *topology.Cluster
	agg       *aggregates
	blacklist *constraint.Blacklist
	il        *ilCache

	// searchStats counts explored machine vertices, the "explored
	// paths" driver of placement latency (§IV.A).
	explored int64
}

// exclusion restricts a search: skip one machine (the one a blocker
// currently occupies), optionally an explicit set, and optionally all
// empty machines (consolidation must never open a new machine).
type exclusion struct {
	machine   topology.MachineID // Invalid when unused
	set       map[topology.MachineID]bool
	skipEmpty bool
}

var noExclusion = exclusion{machine: topology.Invalid}

func (e exclusion) excludes(m topology.MachineID) bool {
	if e.machine == m {
		return true
	}
	return e.set != nil && e.set[m]
}

// findMachine returns the machine chosen for the container, or
// Invalid when no feasible path exists.  With DL the first feasible
// machine wins (first-fit in tier order); without it the search
// exhausts the network and returns the best fit (minimum leftover
// CPU), which is what an un-truncated augmenting search converges to.
func (s *searcher) findMachine(c *workload.Container, excl exclusion) topology.MachineID {
	best := topology.Invalid
	var bestLeft int64 = 1<<62 - 1
	for _, gname := range s.cluster.SubClusters() {
		if !s.agg.subAdmits(gname, c.Demand) {
			continue
		}
		for _, rname := range s.cluster.SubCluster(gname).Racks {
			if !s.agg.rackAdmits(rname, c.Demand) {
				continue
			}
			for _, mid := range s.cluster.Rack(rname).Machines {
				if excl.excludes(mid) {
					continue
				}
				s.explored++
				m := s.cluster.Machine(mid)
				if excl.skipEmpty && m.NumContainers() == 0 {
					continue
				}
				if !m.Fits(c.Demand) {
					continue
				}
				if !s.blacklist.Allows(mid, c) {
					continue
				}
				if s.opts.DepthLimiting {
					// DL: a valid path saturates the container's
					// impartible flow; stop searching (Fig. 5b).
					return mid
				}
				left := m.Free().Sub(c.Demand).Dim(resource.CPU)
				if left < bestLeft {
					best, bestLeft = mid, left
				}
			}
		}
	}
	return best
}

// findResourceFit is findMachine ignoring blacklists: used by
// migration to locate machines where only anti-affinity blocks the
// container.
func (s *searcher) findResourceFits(c *workload.Container, excl exclusion, limit int) []topology.MachineID {
	var out []topology.MachineID
	for _, gname := range s.cluster.SubClusters() {
		if !s.agg.subAdmits(gname, c.Demand) {
			continue
		}
		for _, rname := range s.cluster.SubCluster(gname).Racks {
			if !s.agg.rackAdmits(rname, c.Demand) {
				continue
			}
			for _, mid := range s.cluster.Rack(rname).Machines {
				if excl.excludes(mid) {
					continue
				}
				s.explored++
				if !s.cluster.Machine(mid).Fits(c.Demand) {
					continue
				}
				out = append(out, mid)
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
