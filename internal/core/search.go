package core

import (
	"fmt"

	"aladdin/internal/constraint"
	"aladdin/internal/parallel"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// aggregates caches, per rack and per sub-cluster, the component-wise
// maximum free vector over member machines.  They realise the R and G
// tiers' residual capacities: if a demand does not fit a rack's
// maximum free vector, no path through that rack exists and the whole
// subtree is pruned — the latency win of the tiered network (§III.A).
//
// Maintenance is incremental: a machine update touches one leaf of
// the capacity index and re-reads the owning rack's and sub-cluster's
// range maxima, O(log machines) total, instead of recomputing the
// whole rack.  A periodic full rebuild (the safety valve) resyncs the
// index from live machine state, and DebugChecks cross-checks every
// incremental result against the naive recompute.
type aggregates struct {
	cluster     *topology.Cluster
	idx         *capIndex
	rackMaxFree map[string]resource.Vector
	subMaxFree  map[string]resource.Vector

	// subNames is the sub-cluster sweep order (creation order): shard
	// i of the parallel search owns subNames[i]'s traversal span.
	subNames []string

	// eager selects per-update map maintenance.  The indexed search
	// answers rack/sub admission straight from the tree, so unless the
	// naive scan (which probes rackAdmits per rack per container) or
	// DebugChecks needs them fresh, the name-keyed maps are refreshed
	// lazily on first read after a batch of updates.
	eager bool
	dirty bool

	// naive restores the pre-index maintenance for Options.NaiveSearch:
	// a machine update recomputes its whole rack (and the rack's
	// sub-cluster) from machine state.  The A/B baseline must not
	// inherit the index's O(log) maintenance, or the comparison only
	// measures the scan.
	naive bool

	debugCheck   bool
	updates      int
	rebuildEvery int
}

// defaultRebuildEvery is the safety-valve period: after this many
// incremental updates the index and aggregates are rebuilt from
// machine state, bounding any drift to one window.
const defaultRebuildEvery = 1 << 15

func newAggregates(cluster *topology.Cluster, opts Options) *aggregates {
	rebuildEvery := opts.IndexRebuildEvery
	if rebuildEvery == 0 {
		rebuildEvery = defaultRebuildEvery
	}
	a := &aggregates{
		cluster:      cluster,
		idx:          newCapIndex(cluster),
		rackMaxFree:  make(map[string]resource.Vector, len(cluster.Racks())),
		subMaxFree:   make(map[string]resource.Vector, len(cluster.SubClusters())),
		subNames:     cluster.SubClusters(),
		eager:        opts.NaiveSearch || opts.DebugChecks,
		naive:        opts.NaiveSearch,
		debugCheck:   opts.DebugChecks,
		rebuildEvery: rebuildEvery,
	}
	a.recomputeAll()
	return a
}

// recomputeAll derives every rack and sub-cluster aggregate from the
// index.
func (a *aggregates) recomputeAll() {
	for _, rname := range a.cluster.Racks() {
		a.rackMaxFree[rname] = a.idx.rangeMaxFree(a.idx.tr.RackSpan[rname])
	}
	for _, gname := range a.subNames {
		a.subMaxFree[gname] = a.idx.rangeMaxFree(a.idx.tr.SubSpan[gname])
	}
}

// naiveRackMaxFree is the ground-truth recompute: the component-wise
// max over the rack's up machines, read directly from machine state.
// Down machines contribute nothing, matching the index's empty-leaf
// treatment.
func (a *aggregates) naiveRackMaxFree(rname string) resource.Vector {
	rack := a.cluster.Rack(rname)
	var maxFree resource.Vector
	for _, mid := range rack.Machines {
		m := a.cluster.Machine(mid)
		if !m.Up() {
			continue
		}
		maxFree = maxFree.Max(m.Free())
	}
	return maxFree
}

// naiveSubMaxFree is the sub-cluster analogue, derived from the rack
// aggregates.
func (a *aggregates) naiveSubMaxFree(gname string) resource.Vector {
	sub := a.cluster.SubCluster(gname)
	var maxFree resource.Vector
	for _, rname := range sub.Racks {
		maxFree = maxFree.Max(a.rackMaxFree[rname])
	}
	return maxFree
}

// update refreshes aggregates after machine m's free vector changed.
func (a *aggregates) update(m topology.MachineID) {
	a.updates++
	if a.naive {
		// Pre-index baseline: recompute the owning rack and sub-cluster
		// aggregates in full from machine state.  The index is not
		// maintained (nothing reads it in naive mode).
		machine := a.cluster.Machine(m)
		a.rackMaxFree[machine.Rack] = a.naiveRackMaxFree(machine.Rack)
		a.subMaxFree[machine.Cluster] = a.naiveSubMaxFree(machine.Cluster)
		return
	}
	if a.rebuildEvery > 0 && a.updates%a.rebuildEvery == 0 {
		// Safety valve: resync everything from live machine state.
		a.idx.rebuild()
		if a.eager {
			a.recomputeAll()
		} else {
			a.dirty = true
		}
		return
	}
	a.idx.update(m)
	if !a.eager {
		a.dirty = true
		return
	}
	machine := a.cluster.Machine(m)
	a.rackMaxFree[machine.Rack] = a.idx.rangeMaxFree(a.idx.tr.RackSpan[machine.Rack])
	a.subMaxFree[machine.Cluster] = a.idx.rangeMaxFree(a.idx.tr.SubSpan[machine.Cluster])
	if a.debugCheck {
		a.crossCheck(machine.Rack, machine.Cluster)
	}
}

// refresh brings the name-keyed maps up to date before a read in lazy
// mode.
func (a *aggregates) refresh() {
	if a.dirty {
		a.recomputeAll()
		a.dirty = false
	}
}

// crossCheck validates the incremental aggregates against the naive
// recompute; a mismatch is an index-maintenance bug and panics.  The
// panics are deliberate: crossCheck only runs under Options.DebugChecks
// (a test-only oracle, never a serving configuration), and an
// aggregate-drift bug has no runtime recovery.
//
//aladdin:nondeterministic-ok test-only debug oracle; panic is the point
func (a *aggregates) crossCheck(rname, gname string) {
	if want := a.naiveRackMaxFree(rname); a.rackMaxFree[rname] != want {
		panic(fmt.Sprintf("core: aggregate drift on rack %s: incremental %s, naive %s", rname, a.rackMaxFree[rname], want))
	}
	if want := a.naiveSubMaxFree(gname); a.subMaxFree[gname] != want {
		panic(fmt.Sprintf("core: aggregate drift on sub-cluster %s: incremental %s, naive %s", gname, a.subMaxFree[gname], want))
	}
}

// rackAdmits reports whether some machine in the rack might fit the
// demand (conservative per-dimension check).
func (a *aggregates) rackAdmits(rname string, demand resource.Vector) bool {
	a.refresh()
	return demand.Fits(a.rackMaxFree[rname])
}

// subAdmits is the sub-cluster analogue.
func (a *aggregates) subAdmits(gname string, demand resource.Vector) bool {
	a.refresh()
	return demand.Fits(a.subMaxFree[gname])
}

// ilCache is the isomorphism-limiting memo (§IV.A, Fig. 5a): all
// containers of an application are isomorphic, so once one of them
// proves unplaceable — no valid path through the whole network, even
// after migration and defragmentation — its siblings cannot do better
// and skip the search outright.  An entry stays valid until any
// capacity is released (placements only shrink free space and grow
// blacklists, so they can never make an infeasible sibling feasible;
// releases can).
//
// Entries are a dense slice by app ordinal, not an ID-keyed map: the
// skip check runs once per queued container, and a slice read keeps
// it off the string-hashing path.  failed stores releaseGen+1 so the
// zero value means "never failed" and a fresh cache needs no fill.
type ilCache struct {
	// releaseGen counts capacity releases (unplace/evict).
	releaseGen uint64
	// failed[app] is releaseGen+1 at which the app was proven
	// unplaceable; 0 marks an app never proven unplaceable.
	failed []uint64
}

func newILCache(numApps int) *ilCache {
	return &ilCache{failed: make([]uint64, numApps)}
}

// bump invalidates all cached failures (some capacity was released).
func (il *ilCache) bump() { il.releaseGen++ }

// skip reports whether the app was already proven unplaceable at the
// current generation.
func (il *ilCache) skip(app constraint.AppRef) bool {
	return app >= 0 && int(app) < len(il.failed) && il.failed[app] == il.releaseGen+1
}

// note records that the app is unplaceable at the current generation.
func (il *ilCache) note(app constraint.AppRef) {
	if app >= 0 && int(app) < len(il.failed) {
		il.failed[app] = il.releaseGen + 1
	}
}

// valid reports whether the app's cached failure is live at the
// current generation — skip without the nil-app guard, for exports.
func (il *ilCache) valid(app int) bool {
	return il.failed[app] == il.releaseGen+1
}

// searcher walks the tiered network looking for an augmenting path
// for one container: the getShortestPath of Algorithm 1, with IL and
// DL as the paper's two break conditions (lines 23–29).  By default
// it runs over the residual-capacity index; Options.NaiveSearch
// restores the full linear scan, retained for A/B benchmarking and
// as the oracle the indexed search is validated against.
type searcher struct {
	opts      Options
	cluster   *topology.Cluster
	agg       *aggregates
	blacklist *constraint.Blacklist
	il        *ilCache

	// w is the workload universe; refs is the dense container-ordinal →
	// app-ordinal table, resolved once at construction so per-search
	// app resolution is a slice read shared by every container of a
	// batch instead of a per-container string-map probe.
	w *workload.Workload
	//aladdin:domain ord -> app container ordinal → IL/blacklist app ref
	refs []constraint.AppRef

	// met carries the run's instrument handles (assigned by newRun
	// after construction; the zero value is disabled).  findMachine
	// times itself and classifies its outcome through it.
	met coreMetrics

	// searchStats counts explored machine vertices, the "explored
	// paths" driver of placement latency (§IV.A).  The naive scan
	// counts every non-excluded machine in admitting racks; the
	// indexed search counts the candidates it actually visits (all of
	// which admit the demand on resources), so both remain faithful
	// effort counters for the IL/DL ablation.
	explored int64

	// hint resumes the unrestricted DL first-fit across consecutive
	// same-app searches.  All containers of an app are isomorphic, so
	// once a sibling's search has proven that every machine before
	// traversal position hintPos rejects the app's (demand, blacklist
	// ref), the next sibling's descent can start there — placements at
	// positions ≥ hintPos cannot change the prefix's rejections, and
	// any mutation before hintPos resets the hint (noteUpdate).
	hintApp constraint.AppRef
	hintPos int

	// deferred, when valid, names the one machine whose index
	// refreshes are being batched by a deferUpdates window (drain's
	// move loop); deferredDirty records whether any refresh was
	// actually skipped and owes a final write.
	deferred      topology.MachineID
	deferredDirty bool

	// Scratch state reused across searches so the steady-state hot
	// path performs zero heap allocations: the serial visitor structs
	// replace the per-call closures the pre-SoA layout allocated, and
	// the shard/fit buffers amortise the parallel sweep's staging.
	av      admitState
	fv      fitState
	fitsBuf []topology.MachineID

	shardStates   []admitState
	shardFitState []fitState
	shardBest     []bestFitState
	shardExplored []int64
	shardFits     [][]topology.MachineID
}

// newSearcher wires a searcher with fresh aggregates, index and IL
// state; shared by batch runs (scheduler.go) and sessions.
func newSearcher(opts Options, w *workload.Workload, cluster *topology.Cluster, blacklist *constraint.Blacklist) *searcher {
	s := &searcher{
		opts:      opts,
		cluster:   cluster,
		agg:       newAggregates(cluster, opts),
		blacklist: blacklist,
		il:        newILCache(w.NumApps()),
		w:         w,
		refs:      make([]constraint.AppRef, w.NumContainers()),
		hintApp:   constraint.NoApp,
		deferred:  topology.Invalid,
	}
	for _, c := range w.Containers() {
		s.refs[c.Ord] = constraint.AppRef(w.AppIndex(c.App))
	}
	nShards := len(s.agg.subNames)
	s.shardStates = make([]admitState, nShards)
	s.shardFitState = make([]fitState, nShards)
	s.shardBest = make([]bestFitState, nShards)
	s.shardExplored = make([]int64, nShards)
	s.shardFits = make([][]topology.MachineID, nShards)
	return s
}

// refOf resolves a container to its app ordinal: a slice read for
// workload containers, falling back to the blacklist's string lookup
// for probes outside the universe (search benchmarks).
func (s *searcher) refOf(c *workload.Container) constraint.AppRef {
	cs := s.w.Containers()
	if c.Ord >= 0 && c.Ord < len(cs) && cs[c.Ord] == c {
		return s.refs[c.Ord]
	}
	return s.blacklist.Ref(c.App)
}

// noteUpdate refreshes the index and aggregates after machine m
// changed.  A mutation inside the traversal prefix the sibling hint
// has skipped could make a previously rejecting machine admit again,
// so the hint is dropped; mutations at or after the hint cannot.
func (s *searcher) noteUpdate(m topology.MachineID) {
	if m == s.deferred {
		// Index refresh postponed (see deferUpdates); the lazy
		// name-keyed aggregates still need a recompute before their
		// next read.
		s.deferredDirty = true
		s.agg.dirty = true
	} else {
		s.agg.update(m)
	}
	if s.hintApp != constraint.NoApp && s.agg.idx.tr.Pos[m] < s.hintPos {
		s.hintApp = constraint.NoApp
	}
}

// deferUpdates suspends index refreshes for machine m until
// resumeUpdates.  Only legal while every search excludes m: a subtree
// maximum is monotone in its members' free vectors, so an understated
// stale entry for m can never prune a subtree that still holds some
// other admitting machine — the worst it can do is hide m itself,
// which the exclusion hides anyway.  Consolidation's drain uses this
// to collapse the per-move O(log n) pull chains for the machine being
// emptied (whose free vector changes on every move) into one final
// write.  Disabled in eager modes: their per-update cross-checks
// recompute neighbouring aggregates from live machine state and
// assume a fully live index.
func (s *searcher) deferUpdates(m topology.MachineID) {
	if s.agg.eager {
		return
	}
	s.deferred = m
	s.deferredDirty = false
}

// resumeUpdates ends a deferUpdates window, applying the machine's
// final state to the index if any refresh was skipped.
func (s *searcher) resumeUpdates() {
	m := s.deferred
	if m == topology.Invalid {
		return
	}
	s.deferred = topology.Invalid
	if s.deferredDirty {
		s.agg.update(m)
	}
}

// exclusion restricts a search: skip one machine (the one a blocker
// currently occupies), optionally an explicit set, and optionally all
// empty machines (consolidation must never open a new machine).
type exclusion struct {
	machine   topology.MachineID // Invalid when unused
	set       map[topology.MachineID]bool
	skipEmpty bool
}

var noExclusion = exclusion{machine: topology.Invalid}

func (e exclusion) excludes(m topology.MachineID) bool {
	if e.machine == m {
		return true
	}
	return e.set != nil && e.set[m]
}

// parallelSweepMinMachines gates the parallel sub-cluster sweep: on
// small clusters goroutine fan-out costs more than the scan it saves.
const parallelSweepMinMachines = 512

// sweepParallel reports whether exhaustive (no-DL / resource-fit)
// searches should shard per sub-cluster across workers.
func (s *searcher) sweepParallel() bool {
	return len(s.agg.subNames) > 1 && s.cluster.Size() >= parallelSweepMinMachines
}

// findMachine returns the machine chosen for the container, or
// Invalid when no feasible path exists.  With DL the first feasible
// machine wins (first-fit in tier order); without it the search
// exhausts the network and returns the best fit — minimum leftover
// CPU, ties broken by machine ID — which is what an un-truncated
// augmenting search converges to.
func (s *searcher) findMachine(c *workload.Container, excl exclusion) topology.MachineID {
	if !s.met.on {
		return s.findMachineInner(c, excl)
	}
	start := s.opts.now()
	m := s.findMachineInner(c, excl)
	s.met.searchLat.Observe(s.opts.now().Sub(start).Microseconds())
	if s.opts.NaiveSearch {
		s.met.searchNaive.Inc()
	} else {
		s.met.searchIndexed.Inc()
	}
	if s.opts.DepthLimiting && m != topology.Invalid {
		// DL truncated this search at the first feasible machine
		// instead of sweeping for the global best fit.
		s.met.dlCutoffs.Inc()
	}
	return m
}

func (s *searcher) findMachineInner(c *workload.Container, excl exclusion) topology.MachineID {
	if s.opts.NaiveSearch {
		return s.findMachineNaive(c, excl)
	}
	if s.opts.DepthLimiting {
		return s.firstFitIndexed(c, excl)
	}
	return s.bestFitSweep(c, excl)
}

// admitState is the leaf acceptance check shared by the indexed
// searches: exclusions, consolidation's no-empty-machines rule, a
// live resource-fit check and the blacklist.  The index already
// guarantees the fit on its own view; re-checking against live
// machine state gives the indexed search the same robustness to
// out-of-band cluster mutations (pre-placed residents) that the
// naive scan gets from checking machines directly.  It is a struct
// with a pointer-receiver visit method, not a closure: the serial
// searches reuse one instance held in the searcher's scratch, so the
// hot path allocates nothing.  The explored counter is a pointer so
// parallel shards can count without contending.
type admitState struct {
	s        *searcher
	demand   resource.Vector
	excl     exclusion
	ref      constraint.AppRef
	explored *int64
}

func (v *admitState) visit(mid topology.MachineID) bool {
	if v.excl.excludes(mid) {
		return false
	}
	*v.explored++
	m := v.s.cluster.Machine(mid)
	if v.excl.skipEmpty && m.NumContainers() == 0 {
		return false
	}
	if !m.Fits(v.demand) {
		return false
	}
	return v.s.blacklist.AllowsRef(mid, v.ref)
}

// fitState is admitState without the blacklist: resource-only
// admission for migration's candidate enumeration.
type fitState struct {
	s        *searcher
	demand   resource.Vector
	excl     exclusion
	explored *int64
}

func (v *fitState) visit(mid topology.MachineID) bool {
	if v.excl.excludes(mid) {
		return false
	}
	*v.explored++
	m := v.s.cluster.Machine(mid)
	if v.excl.skipEmpty && m.NumContainers() == 0 {
		return false
	}
	return m.Fits(v.demand)
}

// firstFitIndexed is the DL search over the index: the first machine
// in tier-traversal order that admits the container, found without
// visiting non-admitting subtrees.  Unrestricted searches resume from
// the sibling hint when the app matches.
func (s *searcher) firstFitIndexed(c *workload.Container, excl exclusion) topology.MachineID {
	idx := s.agg.idx
	span := idx.all()
	ref := s.refOf(c)
	hintable := excl.machine == topology.Invalid && excl.set == nil &&
		!excl.skipEmpty && ref != constraint.NoApp
	if hintable && ref == s.hintApp {
		span.Lo = s.hintPos
	}
	s.av = admitState{s: s, demand: c.Demand, excl: excl, ref: ref, explored: &s.explored}
	got := idx.firstFit(span, c.Demand, excl.skipEmpty, &s.av)
	if hintable {
		s.hintApp = ref
		if got != topology.Invalid {
			s.hintPos = idx.tr.Pos[got]
		} else {
			// The whole remaining suffix rejects too; siblings can skip
			// the scan outright until some prefix machine changes.
			s.hintPos = len(idx.tr.Order)
		}
	}
	return got
}

// bestFitSweep is the no-DL search over the index: a per-sub-cluster
// branch-and-bound, fanned out across workers on large clusters and
// merged deterministically — the incumbent order is (leftover CPU,
// machine ID), so the result is identical to the serial scan for any
// -cpu setting.
func (s *searcher) bestFitSweep(c *workload.Container, excl exclusion) topology.MachineID {
	idx := s.agg.idx
	ref := s.refOf(c)
	if !s.sweepParallel() {
		st := newBestFitState()
		s.av = admitState{s: s, demand: c.Demand, excl: excl, ref: ref, explored: &s.explored}
		idx.bestFit(idx.all(), c.Demand, excl.skipEmpty, &s.av, &st)
		return st.id
	}
	for i := range s.shardExplored {
		s.shardExplored[i] = 0
	}
	//aladdin:hotalloc-ok one closure per parallel sweep, amortized over the whole sub-cluster fan-out; the serial path above is the allocguard-measured steady state
	parallel.ForEach(len(s.agg.subNames), 0, func(i int) {
		span := idx.tr.SubSpan[s.agg.subNames[i]]
		st := newBestFitState()
		s.shardStates[i] = admitState{s: s, demand: c.Demand, excl: excl, ref: ref, explored: &s.shardExplored[i]}
		idx.bestFit(span, c.Demand, excl.skipEmpty, &s.shardStates[i], &st)
		s.shardBest[i] = st
	})
	best := newBestFitState()
	for i := range s.shardBest {
		s.explored += s.shardExplored[i]
		best.merge(s.shardBest[i])
	}
	return best.id
}

// findMachineNaive is the retained full linear scan: every
// sub-cluster → rack → machine in tier order, pruned only by the
// rack/sub-cluster aggregates.
func (s *searcher) findMachineNaive(c *workload.Container, excl exclusion) topology.MachineID {
	ref := s.refOf(c)
	best := topology.Invalid
	var bestLeft int64 = 1<<62 - 1
	for _, gname := range s.cluster.SubClusters() {
		if !s.agg.subAdmits(gname, c.Demand) {
			continue
		}
		for _, rname := range s.cluster.SubCluster(gname).Racks {
			if !s.agg.rackAdmits(rname, c.Demand) {
				continue
			}
			for _, mid := range s.cluster.Rack(rname).Machines {
				if excl.excludes(mid) {
					continue
				}
				s.explored++
				m := s.cluster.Machine(mid)
				if excl.skipEmpty && m.NumContainers() == 0 {
					continue
				}
				if !m.Fits(c.Demand) {
					continue
				}
				if !s.blacklist.AllowsRef(mid, ref) {
					continue
				}
				if s.opts.DepthLimiting {
					// DL: a valid path saturates the container's
					// impartible flow; stop searching (Fig. 5b).
					return mid
				}
				left := m.Free().Sub(c.Demand).Dim(resource.CPU)
				// Explicit tie-break (leftover CPU, then machine ID)
				// so the parallel indexed sweep provably matches the
				// serial scan.
				if left < bestLeft || (left == bestLeft && mid < best) {
					best, bestLeft = mid, left
				}
			}
		}
	}
	return best
}

// findResourceFits is findMachine ignoring blacklists: used by
// migration to locate machines where only anti-affinity blocks the
// container.  Results are in tier-traversal order, truncated at
// limit (≤ 0 = unlimited).  The returned slice aliases the
// searcher's reusable buffer and stays valid only until the next
// findResourceFits call.
func (s *searcher) findResourceFits(c *workload.Container, excl exclusion, limit int) []topology.MachineID {
	if s.opts.NaiveSearch {
		return s.findResourceFitsNaive(c, excl, limit)
	}
	idx := s.agg.idx
	s.fitsBuf = s.fitsBuf[:0]
	if !s.sweepParallel() {
		s.fv = fitState{s: s, demand: c.Demand, excl: excl, explored: &s.explored}
		idx.collectFits(idx.all(), c.Demand, excl.skipEmpty, &s.fv, limit, &s.fitsBuf)
		return s.fitsBuf
	}
	// Sharded per sub-cluster; each shard collects up to the full
	// limit (any single shard may end up supplying every survivor),
	// then shards merge in sub-cluster order so the concatenation is
	// exactly the serial traversal order, truncated at limit.
	for i := range s.shardExplored {
		s.shardExplored[i] = 0
		s.shardFits[i] = s.shardFits[i][:0]
	}
	parallel.ForEach(len(s.agg.subNames), 0, func(i int) {
		span := idx.tr.SubSpan[s.agg.subNames[i]]
		s.shardFitState[i] = fitState{s: s, demand: c.Demand, excl: excl, explored: &s.shardExplored[i]}
		idx.collectFits(span, c.Demand, excl.skipEmpty, &s.shardFitState[i], limit, &s.shardFits[i])
	})
	for i, shard := range s.shardFits {
		s.explored += s.shardExplored[i]
		for _, mid := range shard {
			if limit > 0 && len(s.fitsBuf) >= limit {
				continue
			}
			s.fitsBuf = append(s.fitsBuf, mid)
		}
	}
	return s.fitsBuf
}

// findResourceFitsNaive is the retained linear enumeration.
func (s *searcher) findResourceFitsNaive(c *workload.Container, excl exclusion, limit int) []topology.MachineID {
	s.fitsBuf = s.fitsBuf[:0]
	for _, gname := range s.cluster.SubClusters() {
		if !s.agg.subAdmits(gname, c.Demand) {
			continue
		}
		for _, rname := range s.cluster.SubCluster(gname).Racks {
			if !s.agg.rackAdmits(rname, c.Demand) {
				continue
			}
			for _, mid := range s.cluster.Rack(rname).Machines {
				if excl.excludes(mid) {
					continue
				}
				s.explored++
				m := s.cluster.Machine(mid)
				if excl.skipEmpty && m.NumContainers() == 0 {
					continue
				}
				if !m.Fits(c.Demand) {
					continue
				}
				s.fitsBuf = append(s.fitsBuf, mid)
				if limit > 0 && len(s.fitsBuf) >= limit {
					return s.fitsBuf
				}
			}
		}
	}
	return s.fitsBuf
}
