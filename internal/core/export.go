package core

import (
	"fmt"
	"io"

	"aladdin/internal/constraint"
	"aladdin/internal/flow"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// ExportNetworkDOT builds the tiered flow network for the workload
// and cluster, replays the given assignment as flow augmentations,
// and renders the result in Graphviz DOT format — the picture of
// Fig. 4, with live flows.  Useful for debugging small scenarios:
//
//	core.ExportNetworkDOT(os.Stdout, w, cluster, res.Assignment)
func ExportNetworkDOT(out io.Writer, w *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment) error {
	n := buildNetwork(w, cluster)
	byID := make(map[string]*workload.Container, w.NumContainers())
	for _, c := range w.Containers() {
		byID[c.ID] = c
	}
	// Deterministic replay order.
	for _, c := range w.Containers() {
		m, ok := asg[c.ID]
		if !ok {
			continue
		}
		if err := n.augment(c, m); err != nil {
			return fmt.Errorf("core: export: %w", err)
		}
	}

	// Build reverse node-name table from the construction layout.
	names := make(map[flow.NodeID]string, n.g.NumNodes())
	names[n.source] = "s"
	names[n.sink] = "t"
	for i, a := range w.Apps() {
		names[n.appNode[i]] = "A:" + a.ID
	}
	for i, sub := range cluster.SubClusters() {
		names[n.subNode[i]] = "G:" + sub
	}
	// Rack and machine nodes are the From/To endpoints of their arcs.
	for _, rname := range cluster.Racks() {
		arc := n.g.Arc(n.grArc[rname])
		names[arc.To] = "R:" + rname
	}
	for _, m := range cluster.Machines() {
		arc := n.g.Arc(int(n.ntArc[m.ID]))
		names[arc.From] = "N:" + m.Name
	}
	for i, c := range w.Containers() {
		arc := n.g.Arc(int(n.srcArc[i]))
		names[arc.To] = "T:" + c.ID
	}
	return flow.WriteDOT(out, n.g, func(v flow.NodeID) string {
		if name, ok := names[v]; ok {
			return name
		}
		return fmt.Sprintf("n%d", v)
	})
}
