// Package core implements the Aladdin scheduler: an optimized
// maximum-flow algorithm over a tiered flow network
// (s → T → A → G → R → N → t) whose capacity function is
// multidimensional (CPU and memory) and non-linear (set-based
// blacklists for anti-affinity, Equations 6–8), with weighted flows
// for priority (Equations 3–5, 9), isomorphism limiting and depth
// limiting to cut placement latency (§IV.A), and priority-safe
// migration and preemption (§III.B, Fig. 3 and Fig. 7).
package core

import (
	"fmt"
	"strings"
	"time"

	"aladdin/internal/obs"
)

// Options configures an Aladdin scheduler instance.
type Options struct {
	// WeightBase is the configured priority weight multiplier (the
	// paper evaluates 16, 32, 64 and 128, Fig. 9).  Values ≤ 1 derive
	// the minimal safe ladder from the workload instead.
	WeightBase int64
	// IsomorphismLimiting enables IL: once a machine fails a
	// container on resources, isomorphic siblings of the same
	// application skip it (§IV.A, Fig. 5a).
	IsomorphismLimiting bool
	// DepthLimiting enables DL: the path search stops at the first
	// feasible machine because an impartible container's flow cannot
	// be increased by further paths (§IV.A, Fig. 5b).
	DepthLimiting bool
	// Migration allows relocating already-placed containers to clear
	// anti-affinity blockage (Fig. 3b).  A migrated container keeps
	// running elsewhere, so migrating a high-priority container for a
	// low-priority one is safe.
	Migration bool
	// Preemption allows evicting strictly-lower-priority containers
	// when resources are short; victims are re-queued.  Weighted
	// flows guarantee a high-priority container is never preempted by
	// a lower one (§III.B).
	Preemption bool
	// MaxBlockersPerMigration bounds how many blockers one migration
	// will relocate; 0 means the default of 2.
	MaxBlockersPerMigration int
	// MaxRequeues bounds how many times one container may be
	// preempted and re-queued; 0 means the default of 2.
	MaxRequeues int
	// DisableWeights is an ablation switch: when set, preemption
	// compares raw flows f(i,j) instead of weighted flows w_k·f(i,j),
	// reproducing the priority-inversion failure of the unweighted
	// maximum-flow theory (Fig. 3a).
	DisableWeights bool
	// NaiveSearch disables the residual-capacity index and restores
	// the full linear scan over sub-clusters → racks → machines.
	// Kept for A/B benchmarking (BenchmarkSearchIndexed) and as the
	// oracle the indexed search is validated against: under DL both
	// searches produce byte-identical placements, without DL they
	// produce identical undeployed sets.
	NaiveSearch bool
	// DebugChecks enables paranoid invariant checking: every
	// incremental aggregate update is cross-checked against the naive
	// recompute, panicking on drift.  Slow; meant for tests.
	DebugChecks bool
	// IndexRebuildEvery is the search index's full-rebuild safety
	// valve period, in machine updates; 0 means the default (32768),
	// negative disables periodic rebuilds.
	IndexRebuildEvery int
	// Clock supplies wall-clock readings for the latency metrics
	// (Result.Elapsed, FailureResult.Elapsed); nil means time.Now.
	// Placement decisions never read the clock — it exists so replay
	// tests can inject a fixed clock and get bit-identical results,
	// and so the determinism analyzer can prove the scheduler core
	// has exactly one wall-clock read site.
	Clock func() time.Time
	// Metrics, when non-nil, receives the scheduler's phase-latency
	// histograms, pipeline counters and live-state gauges (see
	// internal/obs).  Nil disables instrumentation entirely: no
	// registry lookups, no clock reads beyond the one per-batch
	// Elapsed pair, no allocations on the search hot path.
	Metrics *obs.Registry
	// MetricLabels, when non-empty, attaches these labels to every
	// metric series the scheduler registers on Metrics.  Multi-tenant
	// deployments give each tenant's session a distinct label set
	// (e.g. tenant="blue") so sessions sharing one registry keep
	// separate series instead of clobbering each other's gauges; an
	// empty map keeps today's unlabeled families.
	MetricLabels obs.Labels
	// Tracer, when non-nil, receives structured scheduler events
	// (placements, preemptions, migrations, corruption, machine
	// failures).  Nil is the zero-cost disabled tracer.
	Tracer *obs.Tracer
	// Shards splits the scheduler core along sub-cluster boundaries
	// into this many independently-locked shards, each with its own
	// flow network, tournament subtree and scratch arena (see
	// NewSharded).  Values ≤ 1 mean the single unsharded core; the
	// count is clamped to the number of sub-clusters.  Plain
	// NewSession ignores the field — sharding is opted into by
	// constructing a ShardedSession.
	Shards int
	// SequentialShards forces the sharded core to run its per-shard
	// placement queues one at a time in shard order instead of on one
	// goroutine per shard.  Both modes are byte-identical by
	// construction (shard queues are computed before the fan-out and
	// merged in shard order); the sequential path is retained as the
	// cross-checking oracle for the equivalence fuzz and for
	// single-stepping in a debugger.
	SequentialShards bool
	// LeanPlaceResult omits the per-batch Assignment map from Place
	// results: high-throughput drivers (the simulator's bench loop)
	// never read it — they consume the session-wide Assignment or the
	// ordinal-keyed AssignedOrd instead — and building an ID-keyed
	// map per batch is the single largest serial cost of a sharded
	// placement pass.  Everything else in the Result (Undeployed,
	// counters, timings) is unaffected.
	LeanPlaceResult bool
	// GangScheduling makes application placement all-or-nothing: if
	// any container of an application cannot be placed, the whole
	// application is rolled back and undeployed.  Container groups of
	// LLAs (a Medea concept the flow model supports naturally: an
	// application vertex whose flow either saturates or is
	// withdrawn).
	GangScheduling bool
}

// DefaultOptions returns the full Aladdin configuration used in the
// paper's headline experiments: weight base 16, both latency
// optimisations, migration and preemption enabled.
func DefaultOptions() Options {
	return Options{
		WeightBase:          16,
		IsomorphismLimiting: true,
		DepthLimiting:       true,
		Migration:           true,
		Preemption:          true,
	}
}

// now reads the injected clock, falling back to the system clock.
// This is the scheduler core's only wall-clock read; it feeds latency
// metrics exclusively, never placement decisions.
func (o Options) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now() //aladdin:nondeterministic-ok latency metrics only; replaced by Options.Clock in replays
}

func (o Options) maxBlockers() int {
	if o.MaxBlockersPerMigration > 0 {
		return o.MaxBlockersPerMigration
	}
	return 2
}

func (o Options) maxRequeues() int {
	if o.MaxRequeues > 0 {
		return o.MaxRequeues
	}
	return 2
}

// Name renders the paper's naming convention: "Aladdin(16)" for the
// plain policy, with "+IL" and "+DL" suffixes for the optimisations.
func (o Options) Name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aladdin(%d)", o.WeightBase)
	if o.IsomorphismLimiting {
		b.WriteString("+IL")
	}
	if o.DepthLimiting {
		b.WriteString("+DL")
	}
	return b.String()
}
