package core

import (
	"aladdin/internal/obs"
	"aladdin/internal/topology"
)

// coreMetrics bundles the scheduler's instrument handles.  It is held
// by value; the zero value (all-nil handles, on=false) is the
// disabled configuration — every record call is a nil-receiver no-op
// and, because `on` also gates the phase clock reads, disabled
// instrumentation adds no wall-clock reads to the hot path measured
// in PR 1.
type coreMetrics struct {
	on bool

	// Phase latency histograms, microseconds.
	placeBatch *obs.Histogram
	searchLat  *obs.Histogram
	migLat     *obs.Histogram
	preLat     *obs.Histogram
	auditLat   *obs.Histogram
	failLat    *obs.Histogram
	restoreLat *obs.Histogram

	// Search-path counters: IL cache outcomes, DL early cutoffs, and
	// which search implementation answered.
	ilHits        *obs.Counter
	ilMisses      *obs.Counter
	dlCutoffs     *obs.Counter
	searchIndexed *obs.Counter
	searchNaive   *obs.Counter

	// Pipeline outcome counters.
	placements     *obs.Counter
	migrations     *obs.Counter
	preemptions    *obs.Counter
	consolidations *obs.Counter
	corruptions    *obs.Counter
	failures       *obs.Counter
	recoveries     *obs.Counter
	restores       *obs.Counter

	// Live-state gauges.
	placedGauge  *obs.Gauge
	machinesUp   *obs.Gauge
	machinesDown *obs.Gauge
}

// newCoreMetrics registers the scheduler's metric families on reg; a
// nil registry yields the disabled zero value.  A non-empty label set
// (Options.MetricLabels) scopes every series, so per-tenant sessions
// sharing one registry keep distinct counters and gauges.
func newCoreMetrics(reg *obs.Registry, labels obs.Labels) coreMetrics {
	if reg == nil {
		return coreMetrics{}
	}
	lat := obs.LatencyBucketsUS
	histogram := func(name, help string) *obs.Histogram {
		return reg.LabeledHistogram(name, help, lat, labels)
	}
	counter := func(name, help string) *obs.Counter {
		return reg.LabeledCounter(name, help, labels)
	}
	gauge := func(name, help string) *obs.Gauge {
		return reg.LabeledGauge(name, help, labels)
	}
	return coreMetrics{
		on: true,

		placeBatch: histogram("aladdin_place_batch_duration_us", "wall-clock latency of one Place/Schedule batch, microseconds"),
		searchLat:  histogram("aladdin_search_duration_us", "latency of one findMachine path search, microseconds"),
		migLat:     histogram("aladdin_migration_duration_us", "latency of one migration/defragmentation rescue attempt, microseconds"),
		preLat:     histogram("aladdin_preemption_duration_us", "latency of one preemption rescue attempt, microseconds"),
		auditLat:   histogram("aladdin_audit_duration_us", "latency of one AuditInvariants pass, microseconds"),
		failLat:    histogram("aladdin_fail_machine_duration_us", "eviction plus re-placement latency of one machine failure, microseconds"),
		restoreLat: histogram("aladdin_restore_duration_us", "latency of one RestoreSession warm restart, microseconds"),

		ilHits:        counter("aladdin_il_cache_hits_total", "searches skipped by the isomorphism-limiting cache"),
		ilMisses:      counter("aladdin_il_cache_misses_total", "searches that ran because the IL cache had no valid entry"),
		dlCutoffs:     counter("aladdin_dl_cutoffs_total", "searches truncated at the first feasible machine by depth limiting"),
		searchIndexed: counter("aladdin_search_indexed_total", "path searches answered by the residual-capacity index"),
		searchNaive:   counter("aladdin_search_naive_total", "path searches answered by the naive linear scan"),

		placements:     counter("aladdin_placements_total", "augmenting paths routed (containers placed, including rescue re-placements)"),
		migrations:     counter("aladdin_migrations_total", "containers relocated by migration and defragmentation"),
		preemptions:    counter("aladdin_preemptions_total", "containers evicted by preemption"),
		consolidations: counter("aladdin_consolidations_total", "containers relocated by consolidation drains"),
		corruptions:    counter("aladdin_corruptions_total", "rollback failures that poisoned the scheduler state"),
		failures:       counter("aladdin_machine_failures_total", "machines taken out of service by FailMachine"),
		recoveries:     counter("aladdin_machine_recoveries_total", "machines returned to service by RecoverMachine"),
		restores:       counter("aladdin_restores_total", "sessions rebuilt from a checkpoint by RestoreSession"),

		placedGauge:  gauge("aladdin_flow_containers_placed", "containers currently holding an augmenting path in the flow network"),
		machinesUp:   gauge("aladdin_machines_up", "machines currently in service"),
		machinesDown: gauge("aladdin_machines_down", "machines currently failed"),
	}
}

// initGauges seeds the live-state gauges from cluster ground truth at
// session/run construction.
func (m coreMetrics) initGauges(cluster *topology.Cluster) {
	if !m.on {
		return
	}
	var up, down int64
	for _, machine := range cluster.Machines() {
		if machine.Up() {
			up++
		} else {
			down++
		}
	}
	m.machinesUp.Set(up)
	m.machinesDown.Set(down)
}

// corrupt wraps a rescue-step failure as a CorruptionError, counting
// it and emitting the corruption trace event first — a corrupted
// session is exactly what an operator needs paged about.
func (r *run) corrupt(op string, err error) error {
	r.met.corruptions.Inc()
	r.trc.Emit(obs.Event{Kind: obs.EvRollbackCorruption, Detail: op, Machine: -1})
	return corrupt(op, err)
}
