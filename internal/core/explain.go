package core

import (
	"fmt"
	"strings"

	"aladdin/internal/constraint"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Explanation reports why a container can or cannot be placed against
// a given cluster state — the operator-facing answer to "why is my
// container pending?".
type Explanation struct {
	Container string
	// Chosen is the machine the search would pick now (Invalid when
	// none qualifies).
	Chosen topology.MachineID
	// PrunedSubClusters and PrunedRacks count aggregate subtrees the
	// tiered network let the search skip outright.
	PrunedSubClusters, PrunedRacks int
	// ResourceRejected and BlacklistRejected count machines that were
	// individually examined and failed.
	ResourceRejected, BlacklistRejected int
	// SampleBlockers lists up to 5 (machine, blocking app) pairs for
	// blacklist rejections, the actionable part of the answer.
	SampleBlockers []Blocker
}

// Blocker names one anti-affinity blockage.
type Blocker struct {
	Machine topology.MachineID
	// Apps lists applications placed on the machine that conflict
	// with the explained container's app.
	Apps []string
}

// Placeable reports whether a feasible machine exists.
func (e *Explanation) Placeable() bool { return e.Chosen != topology.Invalid }

// String renders the explanation for logs.
func (e *Explanation) String() string {
	var b strings.Builder
	if e.Placeable() {
		fmt.Fprintf(&b, "%s: placeable on machine %d", e.Container, e.Chosen)
	} else {
		fmt.Fprintf(&b, "%s: UNPLACEABLE", e.Container)
	}
	fmt.Fprintf(&b, " (pruned %d sub-clusters, %d racks; rejected %d on resources, %d on anti-affinity",
		e.PrunedSubClusters, e.PrunedRacks, e.ResourceRejected, e.BlacklistRejected)
	if len(e.SampleBlockers) > 0 {
		b.WriteString("; blockers:")
		for _, bl := range e.SampleBlockers {
			fmt.Fprintf(&b, " machine %d ← %s", bl.Machine, strings.Join(bl.Apps, "+"))
		}
	}
	b.WriteString(")")
	return b.String()
}

// Explain diagnoses one container against the live cluster and
// assignment, without mutating anything.  The blacklist state is
// reconstructed from the assignment.
func Explain(w *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment, containerID string) (*Explanation, error) {
	var target *workload.Container
	byID := make(map[string]*workload.Container, w.NumContainers())
	for _, c := range w.Containers() {
		byID[c.ID] = c
		if c.ID == containerID {
			target = c
		}
	}
	if target == nil {
		return nil, fmt.Errorf("core: explain: %w %q", ErrUnknownContainer, containerID)
	}
	bl := constraint.NewBlacklist(w, cluster.Size())
	// Blacklist reconstruction is order-independent: Place only
	// accumulates per-machine conflict sets, so visiting the
	// assignment in map order is safe.
	//aladdin:nondeterministic-ok commutative set accumulation
	for id, m := range asg {
		if c := byID[id]; c != nil {
			bl.Place(m, c)
		}
	}
	agg := newAggregates(cluster, DefaultOptions())

	e := &Explanation{Container: containerID, Chosen: topology.Invalid}
	for _, gname := range cluster.SubClusters() {
		if !agg.subAdmits(gname, target.Demand) {
			e.PrunedSubClusters++
			continue
		}
		for _, rname := range cluster.SubCluster(gname).Racks {
			if !agg.rackAdmits(rname, target.Demand) {
				e.PrunedRacks++
				continue
			}
			for _, mid := range cluster.Rack(rname).Machines {
				m := cluster.Machine(mid)
				if !m.Fits(target.Demand) {
					e.ResourceRejected++
					continue
				}
				if !bl.Allows(mid, target) {
					e.BlacklistRejected++
					if len(e.SampleBlockers) < 5 {
						e.SampleBlockers = append(e.SampleBlockers, Blocker{
							Machine: mid,
							Apps:    blockingApps(w, byID, m, target),
						})
					}
					continue
				}
				if e.Chosen == topology.Invalid {
					e.Chosen = mid
				}
			}
		}
	}
	return e, nil
}

// blockingApps lists the distinct apps on machine m that conflict
// with the target's app.
func blockingApps(w *workload.Workload, byID map[string]*workload.Container, m *topology.Machine, target *workload.Container) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range m.ContainerIDs() {
		other := byID[id]
		if other == nil || seen[other.App] {
			continue
		}
		conflict := false
		if other.App == target.App {
			conflict = w.AntiAffine(target.App, target.App)
		} else {
			conflict = w.AntiAffine(other.App, target.App)
		}
		if conflict {
			seen[other.App] = true
			out = append(out, other.App)
		}
	}
	return out
}
