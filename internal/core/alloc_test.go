package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// allocFixture builds a session with ample headroom so every Place
// goes through the direct search → place path (no migration, no
// preemption), which is the steady-state hot path the zero-alloc
// guarantee covers.  Anti-affinity is included on purpose: the
// blacklist bookkeeping (PlaceRef/ReleaseRef) is part of that path
// and must be allocation-free too.
func allocFixture() (*Session, []*workload.Container) {
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 4, Priority: workload.PriorityHigh, AntiAffinitySelf: true},
		{ID: "batch", Demand: resource.Cores(2, 4096), Replicas: 8, Priority: workload.PriorityLow},
	})
	cl := topology.New(topology.Config{
		Machines:        16,
		MachinesPerRack: 4,
		RacksPerCluster: 2,
		Capacity:        resource.Cores(32, 64*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	return s, w.Containers()
}

// TestSessionPlaceZeroAlloc is the allocguard contract for the
// scheduler core: after warm-up, a steady-state Place/Remove cycle
// performs zero heap allocations.  Every piece of per-batch state —
// the queue, the undeployed buffer, the result assignment map, the
// batch-membership epochs, the searcher's visitor structs and fit
// buffers, the per-machine resident lists — must come from reusable
// session scratch, not fresh allocation.
func TestSessionPlaceZeroAlloc(t *testing.T) {
	s, cs := allocFixture()
	batch := make([]*workload.Container, len(cs))
	copy(batch, cs)
	cycle := func() {
		res, err := s.Place(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Undeployed) != 0 {
			t.Fatalf("undeployed in ample cluster: %v", res.Undeployed)
		}
		for _, c := range batch {
			if err := s.Remove(c.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm-up: grow every scratch buffer (queue, fit buffers, map
	// buckets, resident lists) to its steady-state capacity.
	for i := 0; i < 3; i++ {
		cycle()
	}
	if got := testing.AllocsPerRun(20, cycle); got != 0 {
		t.Fatalf("steady-state Place/Remove cycle allocates: got %v allocs/run, want 0", got)
	}
}

// BenchmarkSessionPlace measures the full session hot path — one
// batch placement plus the matching departures — and reports
// allocs/op so the allocguard make target can assert it stays zero.
func BenchmarkSessionPlace(b *testing.B) {
	s, cs := allocFixture()
	batch := make([]*workload.Container, len(cs))
	copy(batch, cs)
	for i := 0; i < 3; i++ {
		if _, err := s.Place(batch); err != nil {
			b.Fatal(err)
		}
		for _, c := range batch {
			if err := s.Remove(c.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Place(batch); err != nil {
			b.Fatal(err)
		}
		for _, c := range batch {
			if err := s.Remove(c.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}
