package core

import (
	"fmt"

	"aladdin/internal/flow"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// network is the materialised tiered flow network of §III.A.  The
// aggregate tiers (application, sub-cluster, rack) reduce the edge
// count from O(|T|·|N|) to O(|T| + |A|·|G| + |R| + |N|); the graph
// carries the CPU dimension as its scalar flow (the evaluation's
// dimension) while the multidimensional and non-linear parts of the
// capacity function — memory fit and blacklists — are enforced by the
// search (search.go) before a path is augmented.
type network struct {
	g      *flow.Graph
	source flow.NodeID
	sink   flow.NodeID

	// Arc indexes for path assembly, by tier.
	srcArc map[string]int // container ID -> s→T arc
	taArc  map[string]int // container ID -> T→A arc
	agArc  map[string]int // appID|sub -> A→G arc (created lazily)
	grArc  map[string]int // rack name -> G→R arc
	rnArc  []int          // machine ID -> R→N arc
	ntArc  []int          // machine ID -> N→t arc

	appNode map[string]flow.NodeID
	subNode map[string]flow.NodeID

	// units memoises the flow units (CPU milli, min 1) each placed
	// container pushed, so migrations can cancel exactly that flow.
	units map[string]int64

	cluster *topology.Cluster
}

const infiniteCap = int64(1) << 40

// flowUnits is the scalar flow a container pushes: its CPU demand in
// milli-cores, floored at 1 so zero-CPU containers still register.
func flowUnits(c *workload.Container) int64 {
	u := c.Demand.Dim(resource.CPU)
	if u < 1 {
		u = 1
	}
	return u
}

// buildNetwork constructs the tiered graph for a workload/cluster
// pair.
func buildNetwork(w *workload.Workload, cluster *topology.Cluster) *network {
	n := &network{
		g:       flow.NewGraph(0),
		srcArc:  make(map[string]int, w.NumContainers()),
		taArc:   make(map[string]int, w.NumContainers()),
		agArc:   make(map[string]int),
		grArc:   make(map[string]int),
		rnArc:   make([]int, cluster.Size()),
		ntArc:   make([]int, cluster.Size()),
		appNode: make(map[string]flow.NodeID, len(w.Apps())),
		subNode: make(map[string]flow.NodeID),
		units:   make(map[string]int64),
		cluster: cluster,
	}
	g := n.g
	n.source = g.AddNode()
	n.sink = g.AddNode()

	// Application tier.
	for _, a := range w.Apps() {
		n.appNode[a.ID] = g.AddNode()
	}
	// Sub-cluster (G) tier.
	for _, name := range cluster.SubClusters() {
		n.subNode[name] = g.AddNode()
	}
	// Rack (R) tier and machine (N) tier.
	rackNode := make(map[string]flow.NodeID, len(cluster.Racks()))
	for _, rname := range cluster.Racks() {
		rack := cluster.Rack(rname)
		rn := g.AddNode()
		rackNode[rname] = rn
		n.grArc[rname] = g.MustAddArc(n.subNode[rack.Cluster], rn, infiniteCap, 0)
		for _, mid := range rack.Machines {
			m := cluster.Machine(mid)
			mn := g.AddNode()
			n.rnArc[mid] = g.MustAddArc(rn, mn, infiniteCap, 0)
			cap := m.Capacity().Dim(resource.CPU)
			if cap < 1 {
				cap = 1
			}
			n.ntArc[mid] = g.MustAddArc(mn, n.sink, cap, 0)
		}
	}
	// Container (T) tier: s→T with capacity = demand (c(s,Ti) of
	// Equation 6), T→A infinite.
	for _, c := range w.Containers() {
		tn := g.AddNode()
		n.srcArc[c.ID] = g.MustAddArc(n.source, tn, flowUnits(c), 0)
		n.taArc[c.ID] = g.MustAddArc(tn, n.appNode[c.App], infiniteCap, 0)
	}
	return n
}

// arcAG returns (creating on first use) the A→G arc for an app and
// sub-cluster.  Lazy creation keeps the A×G product sparse: only
// pairs actually used by placements materialise.
func (n *network) arcAG(appID, sub string) int {
	key := appID + "|" + sub
	if idx, ok := n.agArc[key]; ok {
		return idx
	}
	idx := n.g.MustAddArc(n.appNode[appID], n.subNode[sub], infiniteCap, 0)
	n.agArc[key] = idx
	return idx
}

// pathFor assembles the arc path s→T→A→G→R→N→t for placing container
// c on machine m.
func (n *network) pathFor(c *workload.Container, m topology.MachineID) ([]int, error) {
	machine := n.cluster.Machine(m)
	if machine == nil {
		return nil, fmt.Errorf("core: unknown machine %d", m)
	}
	return []int{
		n.srcArc[c.ID],
		n.taArc[c.ID],
		n.arcAG(c.App, machine.Cluster),
		n.grArc[machine.Rack],
		n.rnArc[m],
		n.ntArc[m],
	}, nil
}

// augment pushes the container's flow along its path to machine m.
func (n *network) augment(c *workload.Container, m topology.MachineID) error {
	path, err := n.pathFor(c, m)
	if err != nil {
		return err
	}
	u := flowUnits(c)
	if err := flow.AugmentPath(n.g, path, u); err != nil {
		return fmt.Errorf("core: augment %s on machine %d: %w", c.ID, m, err)
	}
	n.units[c.ID] = u
	return nil
}

// cancel withdraws the container's flow from machine m (used by
// migration and preemption).  Cancelling pushes the same units along
// the residual twins in reverse order, which is a valid t→s path.
func (n *network) cancel(c *workload.Container, m topology.MachineID) error {
	u, ok := n.units[c.ID]
	if !ok {
		return fmt.Errorf("core: cancel %s: no recorded flow", c.ID)
	}
	path, err := n.pathFor(c, m)
	if err != nil {
		return err
	}
	rev := make([]int, 0, len(path))
	for i := len(path) - 1; i >= 0; i-- {
		rev = append(rev, path[i]^1)
	}
	if err := flow.AugmentPath(n.g, rev, u); err != nil {
		return fmt.Errorf("core: cancel %s on machine %d: %w", c.ID, m, err)
	}
	delete(n.units, c.ID)
	return nil
}

// totalFlow returns the flow currently leaving the source.
func (n *network) totalFlow() int64 {
	var total int64
	for _, idx := range n.srcArc {
		total += n.g.Arc(idx).Flow()
	}
	return total
}

// checkConservation validates Equation 2 on every interior node.
func (n *network) checkConservation() error {
	ex := n.g.Excess()
	for v, e := range ex {
		id := flow.NodeID(v)
		if id == n.source || id == n.sink {
			continue
		}
		if e != 0 {
			return fmt.Errorf("core: node %d violates flow conservation: excess %d", v, e)
		}
	}
	return nil
}
