package core

import (
	"fmt"

	"aladdin/internal/flow"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// network is the materialised tiered flow network of §III.A.  The
// aggregate tiers (application, sub-cluster, rack) reduce the edge
// count from O(|T|·|N|) to O(|T| + |A|·|G| + |R| + |N|); the graph
// carries the CPU dimension as its scalar flow (the evaluation's
// dimension) while the multidimensional and non-linear parts of the
// capacity function — memory fit and blacklists — are enforced by the
// search (search.go) before a path is augmented.
//
// All per-placement state is ordinal-indexed in struct-of-arrays
// form: a container is its app-major workload ordinal (Container.Ord)
// and its app is appOf[ord], so assembling a path costs six int32
// slice reads and zero string hashing.  The name-keyed tables
// (appOrd, subOrd, grArc) survive only for the API/export boundary:
// construction, tests, and DOT export.
type network struct {
	g      *flow.Graph
	source flow.NodeID
	sink   flow.NodeID

	// Ordinal tables, fixed at construction.  appOrd/subOrd are the
	// boundary resolvers; the hot path reads appOf.
	appOrd  map[string]int // app ID -> ordinal in workload order
	appBase []int          // app ordinal -> first container ordinal
	appOf   []int32        // container ordinal -> app ordinal
	subOrd  map[string]int // sub-cluster name -> ordinal
	numSubs int

	appNode []flow.NodeID // by app ordinal
	subNode []flow.NodeID // by sub-cluster ordinal

	// Arc indexes for path assembly, by tier.  int32: a graph with
	// 2^31 arcs would be ~100 GB; the narrow type halves the table
	// footprint so the whole path-assembly working set stays cache
	// resident.
	srcArc []int32 // container ordinal -> s→T arc
	taArc  []int32 // container ordinal -> T→A arc
	// agArc[appOrd*numSubs+subOrd] is the A→G arc index plus one
	// (created lazily; zero marks an absent arc).
	agArc []int32
	grArc map[string]int // rack name -> G→R arc (export and tests)
	// grArcOf mirrors grArc per machine so the hot path never touches
	// the rack-name map.
	grArcOf []int32 // machine ID -> its rack's G→R arc
	subOf   []int32 // machine ID -> its sub-cluster's ordinal
	rnArc   []int32 // machine ID -> R→N arc
	ntArc   []int32 // machine ID -> N→t arc

	// units memoises the flow units (CPU milli, min 1) each placed
	// container pushed, by container ordinal, so migrations can cancel
	// exactly that flow.  Units are ≥ 1, so zero marks "not placed".
	units []int64

	cluster *topology.Cluster
}

const infiniteCap = int64(1) << 40

// flowUnits is the scalar flow a container pushes: its CPU demand in
// milli-cores, floored at 1 so zero-CPU containers still register.
func flowUnits(c *workload.Container) int64 {
	u := c.Demand.Dim(resource.CPU)
	if u < 1 {
		u = 1
	}
	return u
}

// buildNetwork constructs the tiered graph for a workload/cluster
// pair.
func buildNetwork(w *workload.Workload, cluster *topology.Cluster) *network {
	apps := w.Apps()
	subs := cluster.SubClusters()
	n := &network{
		g:       flow.NewGraph(0),
		appOrd:  make(map[string]int, len(apps)),
		appBase: make([]int, len(apps)),
		appOf:   make([]int32, w.NumContainers()),
		subOrd:  make(map[string]int, len(subs)),
		numSubs: len(subs),
		appNode: make([]flow.NodeID, len(apps)),
		subNode: make([]flow.NodeID, len(subs)),
		srcArc:  make([]int32, w.NumContainers()),
		taArc:   make([]int32, w.NumContainers()),
		agArc:   make([]int32, len(apps)*len(subs)),
		grArc:   make(map[string]int, len(cluster.Racks())),
		grArcOf: make([]int32, cluster.Size()),
		subOf:   make([]int32, cluster.Size()),
		rnArc:   make([]int32, cluster.Size()),
		ntArc:   make([]int32, cluster.Size()),
		units:   make([]int64, w.NumContainers()),
		cluster: cluster,
	}
	g := n.g
	// Node and arc counts are known up front (A→G arcs materialise
	// lazily; reserve one per app as a working estimate).
	g.Grow(2+len(apps)+len(subs)+len(cluster.Racks())+cluster.Size()+w.NumContainers(),
		len(cluster.Racks())+2*cluster.Size()+2*w.NumContainers()+len(apps))
	n.source = g.AddNode()
	n.sink = g.AddNode()

	// Application tier.
	base := 0
	for i, a := range apps {
		n.appOrd[a.ID] = i
		n.appBase[i] = base
		base += a.Replicas
		n.appNode[i] = g.AddNode()
	}
	// Sub-cluster (G) tier.
	for i, name := range subs {
		n.subOrd[name] = i
		n.subNode[i] = g.AddNode()
	}
	// Rack (R) tier and machine (N) tier.
	for _, rname := range cluster.Racks() {
		rack := cluster.Rack(rname)
		rn := g.AddNode()
		sub := n.subOrd[rack.Cluster]
		gr := g.MustAddArc(n.subNode[sub], rn, infiniteCap, 0)
		n.grArc[rname] = gr
		for _, mid := range rack.Machines {
			m := cluster.Machine(mid)
			mn := g.AddNode()
			n.grArcOf[mid] = int32(gr)
			n.subOf[mid] = int32(sub)
			n.rnArc[mid] = int32(g.MustAddArc(rn, mn, infiniteCap, 0))
			cap := m.Capacity().Dim(resource.CPU)
			if cap < 1 {
				cap = 1
			}
			n.ntArc[mid] = int32(g.MustAddArc(mn, n.sink, cap, 0))
		}
	}
	// Container (T) tier: s→T with capacity = demand (c(s,Ti) of
	// Equation 6), T→A infinite.  Containers are app-major, so the
	// loop index is exactly each container's Ord and the app ordinal
	// table fills in one pass.
	for i, c := range w.Containers() {
		tn := g.AddNode()
		ao := n.appOrd[c.App]
		n.appOf[i] = int32(ao)
		n.srcArc[i] = int32(g.MustAddArc(n.source, tn, flowUnits(c), 0))
		n.taArc[i] = int32(g.MustAddArc(tn, n.appNode[ao], infiniteCap, 0))
	}
	return n
}

// ctOrd resolves a container to its app ordinal and app-major
// workload ordinal.  Containers carry their ordinal (Container.Ord),
// so this is two slice reads — the string-map probe the pre-SoA
// layout paid per path assembly is gone.
func (n *network) ctOrd(c *workload.Container) (app, ct int, err error) {
	if c.Ord < 0 || c.Ord >= len(n.appOf) {
		return 0, 0, fmt.Errorf("core: container %s ordinal %d outside workload universe", c.ID, c.Ord)
	}
	return int(n.appOf[c.Ord]), c.Ord, nil
}

// arcAGOrd returns (creating on first use) the A→G arc for an app and
// sub-cluster, by ordinal.  Lazy creation keeps the A×G product
// sparse in the graph: only pairs actually used by placements
// materialise as arcs.
func (n *network) arcAGOrd(app, sub int) int {
	slot := app*n.numSubs + sub
	if idx := n.agArc[slot]; idx != 0 {
		return int(idx) - 1
	}
	idx := n.g.MustAddArc(n.appNode[app], n.subNode[sub], infiniteCap, 0)
	n.agArc[slot] = int32(idx) + 1
	return idx
}

// arcAG is the by-name view of arcAGOrd, for tests and tooling.
func (n *network) arcAG(appID, sub string) int {
	return n.arcAGOrd(n.appOrd[appID], n.subOrd[sub])
}

// pathForOrd assembles the arc path s→T→A→G→R→N→t for placing the
// container with (app, container) ordinals on machine m into the
// caller's buffer (no allocation).
func (n *network) pathForOrd(ao, ct int, m topology.MachineID, path *[6]int) error {
	if int(m) < 0 || int(m) >= len(n.rnArc) {
		return fmt.Errorf("core: unknown machine %d", m)
	}
	path[0] = int(n.srcArc[ct])
	path[1] = int(n.taArc[ct])
	path[2] = n.arcAGOrd(ao, int(n.subOf[m]))
	path[3] = int(n.grArcOf[m])
	path[4] = int(n.rnArc[m])
	path[5] = int(n.ntArc[m])
	return nil
}

// pathFor is pathForOrd with the container resolved first, for tests.
func (n *network) pathFor(c *workload.Container, m topology.MachineID, path *[6]int) error {
	ao, ct, err := n.ctOrd(c)
	if err != nil {
		return err
	}
	return n.pathForOrd(ao, ct, m, path)
}

// augment pushes the container's flow along its path to machine m.
func (n *network) augment(c *workload.Container, m topology.MachineID) error {
	ao, ct, err := n.ctOrd(c)
	if err != nil {
		return err
	}
	var path [6]int
	if err := n.pathForOrd(ao, ct, m, &path); err != nil {
		return err
	}
	u := flowUnits(c)
	if err := flow.AugmentPath(n.g, path[:], u); err != nil {
		return fmt.Errorf("core: augment %s on machine %d: %w", c.ID, m, err)
	}
	n.units[ct] = u
	return nil
}

// cancel withdraws the container's flow from machine m (used by
// migration and preemption).  Cancelling pushes the same units along
// the residual twins in reverse order, which is a valid t→s path.
func (n *network) cancel(c *workload.Container, m topology.MachineID) error {
	ao, ct, err := n.ctOrd(c)
	if err != nil {
		return err
	}
	u := n.units[ct]
	if u == 0 {
		return fmt.Errorf("core: cancel %s: no recorded flow", c.ID)
	}
	var path [6]int
	if err := n.pathForOrd(ao, ct, m, &path); err != nil {
		return err
	}
	var rev [6]int
	for i := range path {
		rev[len(path)-1-i] = path[i] ^ 1
	}
	if err := flow.AugmentPath(n.g, rev[:], u); err != nil {
		return fmt.Errorf("core: cancel %s on machine %d: %w", c.ID, m, err)
	}
	n.units[ct] = 0
	return nil
}

// totalFlow returns the flow currently leaving the source.
func (n *network) totalFlow() int64 {
	var total int64
	for _, idx := range n.srcArc {
		total += n.g.Arc(int(idx)).Flow()
	}
	return total
}

// checkConservation validates Equation 2 on every interior node.
func (n *network) checkConservation() error {
	ex := n.g.Excess()
	for v, e := range ex {
		id := flow.NodeID(v)
		if id == n.source || id == n.sink {
			continue
		}
		if e != 0 {
			return fmt.Errorf("core: node %d violates flow conservation: excess %d", v, e)
		}
	}
	return nil
}
