// Package medea reimplements the Medea baseline (Garefalakis et al.,
// EuroSys 2018) as the paper evaluates it: an ILP-style optimiser
// that balances three weighted objectives — maximise placed
// containers, minimise resource fragmentation and minimise constraint
// violations — written weights(a, b, c) in the evaluation.
//
// The real Medea hands the ILP to a solver; the paper itself calls
// the result "essentially an approximation algorithm", and this
// implementation approximates the same objective with a greedy
// assignment followed by local-search improvement sweeps.  The
// characteristic behaviours the evaluation relies on are preserved:
// with c = 0 violations are hard-forbidden and some containers stay
// undeployed; with c > 0 Medea tolerates violations to pack more; and
// the search cost grows steeply with cluster size (Fig. 12's
// "exponential" latency curve).
package medea

import (
	"fmt"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Weights are Medea's three normalised objective weights: A rewards
// placements, B penalises fragmentation, C is the violation
// tolerance (0 = violations forbidden, 1 = violations free).
type Weights struct {
	A, B, C float64
}

// Validate rejects weights outside [0,1].
func (w Weights) Validate() error {
	for _, v := range []float64{w.A, w.B, w.C} {
		if v < 0 || v > 1 {
			return fmt.Errorf("medea: weight %v out of [0,1]", v)
		}
	}
	return nil
}

// Options configures Medea.
type Options struct {
	Weights Weights
	// Sweeps is the number of local-search improvement passes; 0
	// means the default of 2.
	Sweeps int
}

func (o Options) sweeps() int {
	if o.Sweeps > 0 {
		return o.Sweeps
	}
	return 2
}

// Scheduler is the Medea baseline.
type Scheduler struct {
	opts Options
}

// New builds a Medea scheduler; invalid weights are clamped into
// [0,1] so Table-style sweeps cannot crash an experiment.
func New(opts Options) *Scheduler {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	opts.Weights.A = clamp(opts.Weights.A)
	opts.Weights.B = clamp(opts.Weights.B)
	opts.Weights.C = clamp(opts.Weights.C)
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler, e.g. "Medea(1,1,0.5)".
func (s *Scheduler) Name() string {
	w := s.opts.Weights
	return fmt.Sprintf("Medea(%s,%s,%s)", trimFloat(w.A), trimFloat(w.B), trimFloat(w.C))
}

func trimFloat(v float64) string {
	out := fmt.Sprintf("%g", v)
	return out
}

// violPenalty is the objective cost of one violated constraint at
// tolerance 0 (scaled down linearly as C rises).
const violPenalty = 1000.0

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*sched.Result, error) {
	start := time.Now()
	st := newState(w, cluster)

	// Phase 1: greedy assignment maximising the weighted objective.
	var undeployed []*workload.Container
	for _, c := range arrivals {
		if m := s.bestMachine(st, c, topology.Invalid); m != topology.Invalid {
			st.place(c, m)
		} else {
			undeployed = append(undeployed, c)
		}
	}

	// Phase 2: local-search sweeps — try to relocate each placed
	// container to a strictly better machine and to rescue
	// undeployed containers as the landscape shifts.
	for sweep := 0; sweep < s.opts.sweeps(); sweep++ {
		improved := false
		for _, c := range arrivals {
			cur, placed := st.asg[c.ID]
			if !placed {
				continue
			}
			curScore := s.scoreOn(st, c, cur)
			best, bestScore := topology.Invalid, curScore
			for _, m := range st.cluster.Machines() {
				if m.ID == cur {
					continue
				}
				sc, ok := s.score(st, c, m)
				if ok && sc > bestScore+1e-9 {
					best, bestScore = m.ID, sc
				}
			}
			if best != topology.Invalid {
				st.evict(c, cur)
				st.place(c, best)
				improved = true
			}
		}
		var still []*workload.Container
		for _, c := range undeployed {
			if m := s.bestMachine(st, c, topology.Invalid); m != topology.Invalid {
				st.place(c, m)
				improved = true
			} else {
				still = append(still, c)
			}
		}
		undeployed = still
		if !improved {
			break
		}
	}

	var undeployedIDs []string
	for _, c := range undeployed {
		undeployedIDs = append(undeployedIDs, c.ID)
	}
	res := &sched.Result{
		Scheduler:  s.Name(),
		Assignment: st.asg,
		Undeployed: undeployedIDs,
		Elapsed:    time.Since(start),
	}
	res.Finalize(w)
	return res, nil
}

// state is the mutable view of one run.
type state struct {
	w       *workload.Workload
	cluster *topology.Cluster
	byID    map[string]*workload.Container
	asg     constraint.Assignment
}

func newState(w *workload.Workload, cluster *topology.Cluster) *state {
	st := &state{
		w:       w,
		cluster: cluster,
		byID:    make(map[string]*workload.Container, w.NumContainers()),
		asg:     make(constraint.Assignment),
	}
	for _, c := range w.Containers() {
		st.byID[c.ID] = c
	}
	return st
}

func (st *state) place(c *workload.Container, m topology.MachineID) {
	if err := st.cluster.Machine(m).Allocate(c.ID, c.Demand); err != nil {
		panic("medea: place: " + err.Error())
	}
	st.asg[c.ID] = m
}

func (st *state) evict(c *workload.Container, m topology.MachineID) {
	if _, err := st.cluster.Machine(m).Release(c.ID); err != nil {
		panic("medea: evict: " + err.Error())
	}
	delete(st.asg, c.ID)
}

// conflictsOn counts anti-affinity conflicts container c would have
// with the current occupants of machine m.
func (st *state) conflictsOn(c *workload.Container, m *topology.Machine) int {
	n := 0
	for _, id := range m.ContainerIDs() {
		if id == c.ID {
			continue
		}
		other := st.byID[id]
		if other == nil {
			continue
		}
		if other.App == c.App {
			if st.w.AntiAffine(c.App, c.App) {
				n++
			}
		} else if st.w.AntiAffine(other.App, c.App) {
			n++
		}
	}
	return n
}

// score evaluates placing c on m under the weighted objective; ok is
// false when the placement is inadmissible (resources, or violations
// at zero tolerance).
func (s *Scheduler) score(st *state, c *workload.Container, m *topology.Machine) (float64, bool) {
	if !m.Fits(c.Demand) {
		return 0, false
	}
	conflicts := st.conflictsOn(c, m)
	wts := s.opts.Weights
	if conflicts > 0 && wts.C == 0 {
		return 0, false
	}
	// Placement reward.
	score := wts.A * 1.0
	// Fragmentation: free CPU left on the machine after placement,
	// normalised — packing tightly scores higher.
	freeAfter := m.Free().Sub(c.Demand)
	frag := resource.CPUUtilization(freeAfter, m.Capacity())
	score -= wts.B * frag
	// Violations: scaled by (1 - C).
	score -= (1 - wts.C) * violPenalty / 1000.0 * float64(conflicts)
	return score, true
}

// scoreOn scores c at its current machine (for move comparisons),
// excluding its own resource usage from the fit test.
func (s *Scheduler) scoreOn(st *state, c *workload.Container, mid topology.MachineID) float64 {
	m := st.cluster.Machine(mid)
	conflicts := st.conflictsOn(c, m)
	wts := s.opts.Weights
	score := wts.A * 1.0
	frag := resource.CPUUtilization(m.Free(), m.Capacity())
	score -= wts.B * frag
	score -= (1 - wts.C) * violPenalty / 1000.0 * float64(conflicts)
	return score
}

// bestMachine returns the admissible machine with the highest
// positive score, or Invalid.
func (s *Scheduler) bestMachine(st *state, c *workload.Container, exclude topology.MachineID) topology.MachineID {
	best := topology.Invalid
	bestScore := 0.0
	for _, m := range st.cluster.Machines() {
		if m.ID == exclude {
			continue
		}
		sc, ok := s.score(st, c, m)
		if !ok {
			continue
		}
		if best == topology.Invalid || sc > bestScore+1e-9 {
			best, bestScore = m.ID, sc
		}
	}
	if best != topology.Invalid && bestScore <= 0 {
		// The objective prefers leaving the container unplaced (e.g.
		// heavy violation penalty at low tolerance).
		return topology.Invalid
	}
	return best
}
