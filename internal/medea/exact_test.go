package medea

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func tinyCluster(machines int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines: machines, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(8, 16*1024),
	})
}

func TestObjectiveBasics(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2, AntiAffinitySelf: true},
	})
	cl := tinyCluster(2)
	wts := Weights{A: 1, B: 1, C: 0}
	// Empty assignment: objective 0.
	obj, err := Objective(w, cl, constraint.Assignment{}, wts)
	if err != nil || obj != 0 {
		t.Fatalf("empty objective = %v, %v", obj, err)
	}
	// Both spread: 2·A − frag(two machines half free).
	spread := constraint.Assignment{"a/0": 0, "a/1": 1}
	objSpread, err := Objective(w, cl, spread, wts)
	if err != nil {
		t.Fatal(err)
	}
	if objSpread != 2-0.5-0.5 {
		t.Errorf("spread objective = %v, want 1.0", objSpread)
	}
	// Both stacked: violation at zero tolerance is costly.
	stacked := constraint.Assignment{"a/0": 0, "a/1": 0}
	objStacked, err := Objective(w, cl, stacked, wts)
	if err != nil {
		t.Fatal(err)
	}
	if objStacked >= objSpread {
		t.Errorf("stacked %v should score below spread %v at zero tolerance", objStacked, objSpread)
	}
	// Over capacity is an error.
	over := constraint.Assignment{"a/0": 0, "a/1": 0}
	w2 := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(5, 4096), Replicas: 2},
	})
	if _, err := Objective(w2, cl, over, wts); err == nil {
		t.Error("over-capacity assignment should error")
	}
	// Unknown machine is an error.
	if _, err := Objective(w, cl, constraint.Assignment{"a/0": 99}, wts); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestExactSolveSmall(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2, AntiAffinitySelf: true},
		{ID: "b", Demand: resource.Cores(8, 8192), Replicas: 1},
	})
	cl := tinyCluster(3)
	asg, obj, err := ExactSolve(w, cl, Weights{A: 1, B: 1, C: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 3 {
		t.Errorf("exact should place all 3, placed %d", len(asg))
	}
	if len(constraint.AuditAntiAffinity(w, asg)) != 0 {
		t.Error("exact optimum at zero tolerance must not violate")
	}
	if obj <= 0 {
		t.Errorf("objective = %v", obj)
	}
}

func TestExactSolveRejectsBigInstances(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1), Replicas: MaxExactContainers + 1},
	})
	if _, _, err := ExactSolve(w, tinyCluster(2), Weights{A: 1}); err == nil {
		t.Error("oversized instance should be rejected")
	}
	if _, _, err := ExactSolve(w, tinyCluster(2), Weights{A: 2}); err == nil {
		t.Error("invalid weights should be rejected")
	}
}

// TestGreedyNearExact validates the approximation: on random tiny
// instances the greedy+local-search scheduler's objective is never
// better than the exact optimum and stays within an absolute gap.
func TestGreedyNearExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nApps := 1 + rng.Intn(3)
		var apps []*workload.App
		total := 0
		for i := 0; i < nApps && total < 6; i++ {
			reps := 1 + rng.Intn(3)
			total += reps
			apps = append(apps, &workload.App{
				ID:               string(rune('a' + i)),
				Demand:           resource.Cores(1+rng.Int63n(6), 1024),
				Replicas:         reps,
				AntiAffinitySelf: rng.Intn(2) == 0,
			})
		}
		w, err := workload.New(apps)
		if err != nil {
			return false
		}
		wts := Weights{A: 1, B: 1, C: 0}
		clExact := tinyCluster(3)
		_, exactObj, err := ExactSolve(w, clExact, wts)
		if err != nil {
			return false
		}
		clGreedy := tinyCluster(3)
		res, err := New(Options{Weights: wts, Sweeps: 3}).Schedule(w, clGreedy, w.Arrange(workload.OrderSubmission))
		if err != nil {
			return false
		}
		greedyObj, err := Objective(w, topology.New(topology.Config{
			Machines: 3, MachinesPerRack: 2, RacksPerCluster: 2,
			Capacity: resource.Cores(8, 16*1024),
		}), res.Assignment, wts)
		if err != nil {
			return false
		}
		const eps = 1e-9
		if greedyObj > exactObj+eps {
			return false // greedy cannot beat the optimum
		}
		// Generous absolute gap: greedy may miss packing nuances but
		// should not collapse.
		return exactObj-greedyObj <= 2.0+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
