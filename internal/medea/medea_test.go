package medea

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func cluster(n int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines: n, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
}

func run(t *testing.T, s *Scheduler, w *workload.Workload, cl *topology.Cluster) *sched.Result {
	t.Helper()
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestName(t *testing.T) {
	s := New(Options{Weights: Weights{1, 1, 0.5}})
	if s.Name() != "Medea(1,1,0.5)" {
		t.Errorf("Name = %q", s.Name())
	}
	s2 := New(Options{Weights: Weights{1, 0.5, 0}})
	if s2.Name() != "Medea(1,0.5,0)" {
		t.Errorf("Name = %q", s2.Name())
	}
}

func TestWeightsValidateAndClamp(t *testing.T) {
	if err := (Weights{1, 1, 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Weights{1.5, 0, 0}).Validate(); err == nil {
		t.Error("out-of-range weight should fail Validate")
	}
	s := New(Options{Weights: Weights{2, -1, 0.5}})
	if s.opts.Weights.A != 1 || s.opts.Weights.B != 0 {
		t.Errorf("clamping failed: %+v", s.opts.Weights)
	}
}

func TestBasicPlacement(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 8},
	})
	cl := cluster(4)
	res := run(t, New(Options{Weights: Weights{1, 1, 0}}), w, cl)
	if len(res.Undeployed) != 0 {
		t.Errorf("undeployed: %v", res.Undeployed)
	}
}

func TestPacksToMinimizeFragmentation(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 8},
	})
	cl := cluster(8)
	run(t, New(Options{Weights: Weights{1, 1, 0}}), w, cl)
	if used := cl.UsedMachines(); used != 1 {
		t.Errorf("Medea(1,1,0) should pack onto 1 machine, used %d", used)
	}
}

func TestZeroToleranceNeverViolates(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(17, 100))
	cl := cluster(256)
	res := run(t, New(Options{Weights: Weights{1, 1, 0}}), w, cl)
	if s := res.ViolationSummary(); s.Within+s.Across != 0 {
		t.Errorf("zero tolerance violated constraints: %+v", s)
	}
}

func TestToleranceTradesViolationsForPlacements(t *testing.T) {
	// The Fig. 1(c) behaviour: to minimise machines, Medea with
	// tolerance co-locates anti-affine containers.
	w := workload.MustNew([]*workload.App{
		{ID: "s0", Demand: resource.Cores(8, 8192), Replicas: 1, AntiAffinityApps: []string{"s1"}},
		{ID: "s1", Demand: resource.Cores(12, 12288), Replicas: 2, Priority: workload.PriorityHigh},
	})
	// One 32-core machine: packing all three requires violating.
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	tolerant := run(t, New(Options{Weights: Weights{1, 1, 1}}), w, cl)
	if len(tolerant.Undeployed) != 0 {
		t.Errorf("tolerant Medea should deploy all: %v", tolerant.Undeployed)
	}
	if tolerant.ViolationSummary().Across == 0 {
		t.Error("tolerant Medea should have violated the s0~s1 constraint")
	}

	cl.Reset()
	strict := run(t, New(Options{Weights: Weights{1, 1, 0}}), w, cl)
	if strict.ViolationSummary().Total() != 0 {
		t.Error("strict Medea must not violate")
	}
	if len(strict.Undeployed) == 0 {
		t.Error("strict Medea must leave s0 or s1 undeployed on one machine")
	}
}

func TestSelfAntiAffinitySpread(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 4, AntiAffinitySelf: true},
	})
	cl := cluster(4)
	res := run(t, New(Options{Weights: Weights{1, 1, 0}}), w, cl)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("violations: %+v", s)
	}
}

func TestLocalSearchImproves(t *testing.T) {
	// More sweeps must never do worse on the combined metric.
	w := trace.MustGenerate(trace.Scaled(29, 200))
	cl0, cl3 := cluster(192), cluster(192)
	res0 := run(t, New(Options{Weights: Weights{1, 1, 0}, Sweeps: 1}), w, cl0)
	res3 := run(t, New(Options{Weights: Weights{1, 1, 0}, Sweeps: 4}), w, cl3)
	if len(res3.Undeployed) > len(res0.Undeployed) {
		t.Errorf("more sweeps left more undeployed: %d vs %d",
			len(res3.Undeployed), len(res0.Undeployed))
	}
}

func TestInfeasibleStaysUndeployed(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "whale", Demand: resource.Cores(64, 1024), Replicas: 1},
	})
	cl := cluster(2)
	res := run(t, New(Options{Weights: Weights{1, 1, 1}}), w, cl)
	if len(res.Undeployed) != 1 {
		t.Errorf("undeployed = %v", res.Undeployed)
	}
}
