package medea

import (
	"fmt"
	"math"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// MaxExactContainers bounds the instance size ExactSolve accepts; the
// search is exponential (it is the ILP Medea hands to a solver), so
// it exists to validate the greedy/local-search approximation on
// small instances, not to schedule real workloads.
const MaxExactContainers = 10

// Objective evaluates the global Medea objective for an assignment:
//
//	A·|placed| − B·Σ_used free_m/cap_m − (1−C)·10·violations
//
// — maximise placements, minimise fragmentation of used machines,
// minimise violations weighted by tolerance.  At C = 0 violations are
// hard constraints (the objective is −Inf), matching the scheduler's
// behaviour of refusing violating placements outright.  Returns an
// error when the assignment is resource-infeasible.
func Objective(w *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment, wts Weights) (float64, error) {
	used := make(map[topology.MachineID]resource.Vector)
	placed := 0
	for _, c := range w.Containers() {
		m, ok := asg[c.ID]
		if !ok {
			continue
		}
		machine := cluster.Machine(m)
		if machine == nil {
			return 0, fmt.Errorf("medea: objective: unknown machine %d", m)
		}
		used[m] = used[m].Add(c.Demand)
		placed++
	}
	frag := 0.0
	for m, u := range used {
		capVec := cluster.Machine(m).Capacity()
		if !u.Fits(capVec) {
			return 0, fmt.Errorf("medea: objective: machine %d over capacity", m)
		}
		frag += resource.CPUUtilization(capVec.Sub(u), capVec)
	}
	violations := len(constraint.AuditAntiAffinity(w, asg))
	if violations > 0 && wts.C == 0 {
		return math.Inf(-1), nil
	}
	return wts.A*float64(placed) - wts.B*frag - (1-wts.C)*10*float64(violations), nil
}

// ExactSolve exhaustively finds the assignment maximising Objective
// by branch and bound.  Instances above MaxExactContainers are
// rejected.  The cluster is only read for machine capacities.
func ExactSolve(w *workload.Workload, cluster *topology.Cluster, wts Weights) (constraint.Assignment, float64, error) {
	if err := wts.Validate(); err != nil {
		return nil, 0, err
	}
	cs := w.Containers()
	if len(cs) > MaxExactContainers {
		return nil, 0, fmt.Errorf("medea: exact solve limited to %d containers, got %d",
			MaxExactContainers, len(cs))
	}
	machines := cluster.Machines()

	best := constraint.Assignment{}
	bestObj, err := Objective(w, cluster, best, wts)
	if err != nil {
		return nil, 0, err
	}

	cur := constraint.Assignment{}
	free := make([]resource.Vector, len(machines))
	for i, m := range machines {
		free[i] = m.Free()
	}

	var dfs func(i int, placedSoFar int)
	dfs = func(i int, placedSoFar int) {
		if i == len(cs) {
			obj, err := Objective(w, cluster, cur, wts)
			if err != nil {
				return
			}
			if obj > bestObj {
				bestObj = obj
				best = constraint.Assignment{}
				for k, v := range cur {
					best[k] = v
				}
			}
			return
		}
		// Bound: even placing every remaining container for the full
		// A reward (zero frag/violation cost) cannot beat bestObj.
		remaining := len(cs) - i
		if wts.A*float64(placedSoFar+remaining) <= bestObj {
			// Fragmentation and violation terms only subtract, so
			// this upper bound is valid; but note the current partial
			// solution also carries costs already, making the true
			// bound even lower.
			return
		}
		c := cs[i]
		// Option 1: leave unplaced.
		dfs(i+1, placedSoFar)
		// Option 2: each machine with room.
		for mi := range machines {
			if !c.Demand.Fits(free[mi]) {
				continue
			}
			free[mi] = free[mi].Sub(c.Demand)
			cur[c.ID] = machines[mi].ID
			dfs(i+1, placedSoFar+1)
			delete(cur, c.ID)
			free[mi] = free[mi].Add(c.Demand)
		}
	}
	dfs(0, 0)
	return best, bestObj, nil
}
