package topology

import (
	"testing"

	"aladdin/internal/resource"
)

func TestNewHeterogeneous(t *testing.T) {
	cl, err := NewHeterogeneous(HeteroConfig{
		Classes: []MachineClass{
			{Name: "big", Count: 10, Capacity: resource.Cores(64, 128*1024)},
			{Name: "std", Count: 20, Capacity: resource.Cores(32, 64*1024)},
			{Name: "old", Count: 5, Capacity: resource.Cores(16, 32*1024)},
		},
		MachinesPerRack: 8,
		RacksPerCluster: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 35 {
		t.Fatalf("Size = %d", cl.Size())
	}
	classes := cl.Classes()
	if len(classes) != 3 {
		t.Errorf("Classes = %d, want 3", len(classes))
	}
	// Racks never mix classes.
	for _, rname := range cl.Racks() {
		rack := cl.Rack(rname)
		if len(rack.Machines) == 0 {
			t.Fatalf("empty rack %s", rname)
		}
		first := cl.Machine(rack.Machines[0]).Capacity()
		for _, mid := range rack.Machines {
			if cl.Machine(mid).Capacity() != first {
				t.Errorf("rack %s mixes machine classes", rname)
			}
		}
		if len(rack.Machines) > 8 {
			t.Errorf("rack %s holds %d machines, cap 8", rname, len(rack.Machines))
		}
	}
	// Machine IDs remain dense and ordered.
	for i, m := range cl.Machines() {
		if int(m.ID) != i {
			t.Fatalf("machine %d has ID %d", i, m.ID)
		}
	}
}

func TestNewHeterogeneousValidation(t *testing.T) {
	if _, err := NewHeterogeneous(HeteroConfig{}); err == nil {
		t.Error("no classes should fail")
	}
	if _, err := NewHeterogeneous(HeteroConfig{
		Classes: []MachineClass{{Name: "x", Count: 0, Capacity: resource.Cores(1, 1)}},
	}); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := NewHeterogeneous(HeteroConfig{
		Classes: []MachineClass{{Name: "x", Count: 1}},
	}); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestHeterogeneousDefaults(t *testing.T) {
	cl, err := NewHeterogeneous(HeteroConfig{
		Classes: []MachineClass{{Name: "a", Count: 90, Capacity: resource.Cores(32, 65536)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// default 40 per rack -> 3 racks
	if got := len(cl.Racks()); got != 3 {
		t.Errorf("racks = %d, want 3", got)
	}
}

func TestClassesHomogeneous(t *testing.T) {
	cl := New(AlibabaConfig(5))
	if got := len(cl.Classes()); got != 1 {
		t.Errorf("Classes = %d, want 1", got)
	}
}
