// Package topology models the physical cluster: machines grouped into
// racks, racks grouped into (sub-)clusters.  These are the N, R and G
// vertex tiers of Aladdin's flow network (§III.A); introducing the
// aggregate tiers reduces the edge count from O(|T|·|N|) to
// O(|T| + |A|·|R| + |N|).
package topology

import (
	"fmt"
	"sort"

	"aladdin/internal/resource"
)

// MachineID identifies one machine; IDs are dense indexes into the
// cluster's machine slice so schedulers can use them as array offsets.
type MachineID int

// Invalid is the MachineID returned when no machine qualifies.
const Invalid MachineID = -1

// Machine is a single host.  Machines track their own allocation so a
// scheduler can ask "does this container fit" in O(1).
type Machine struct {
	ID      MachineID
	Name    string
	Rack    string
	Cluster string

	capacity resource.Vector
	used     resource.Vector

	// down marks a failed machine: it admits no placements until it
	// is marked up again.  Residents are not evicted here — failure
	// semantics (flow cancellation, re-placement) belong to the
	// scheduler; topology only tracks availability.
	down bool

	// containers maps container IDs placed on this machine to their
	// demand so deallocation restores exactly what allocation took.
	containers map[string]resource.Vector

	// idsCache holds the sorted ContainerIDs result between
	// allocation changes (nil = stale).  Migration-heavy passes read
	// the hosted set far more often than they change it.
	idsCache []string
}

// NewMachine builds an empty machine with the given capacity.
func NewMachine(id MachineID, name, rack, cluster string, capacity resource.Vector) *Machine {
	return &Machine{
		ID:         id,
		Name:       name,
		Rack:       rack,
		Cluster:    cluster,
		capacity:   capacity,
		containers: make(map[string]resource.Vector),
	}
}

// Capacity returns the machine's total resources.
func (m *Machine) Capacity() resource.Vector { return m.capacity }

// Used returns the resources currently allocated.
func (m *Machine) Used() resource.Vector { return m.used }

// Free returns capacity minus used.
func (m *Machine) Free() resource.Vector { return m.capacity.Sub(m.used) }

// NumContainers returns how many containers are placed here.
func (m *Machine) NumContainers() int { return len(m.containers) }

// Hosts reports whether the named container is placed on this machine.
func (m *Machine) Hosts(containerID string) bool {
	_, ok := m.containers[containerID]
	return ok
}

// Allocations returns a copy of the container→demand map.
func (m *Machine) Allocations() map[string]resource.Vector {
	out := make(map[string]resource.Vector, len(m.containers))
	for id, d := range m.containers {
		out[id] = d
	}
	return out
}

// ContainerIDs returns the IDs of hosted containers in sorted order.
// The slice is cached until the next Allocate/Release/Reset; callers
// must not modify it.
func (m *Machine) ContainerIDs() []string {
	if m.idsCache == nil {
		ids := make([]string, 0, len(m.containers))
		for id := range m.containers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		m.idsCache = ids
	}
	return m.idsCache
}

// Up reports whether the machine is in service.  Down machines admit
// no placements; every search path treats them as having no residual
// capacity.
func (m *Machine) Up() bool { return !m.down }

// MarkDown takes the machine out of service.  Idempotent; residents
// stay allocated until the caller evicts them.
func (m *Machine) MarkDown() { m.down = true }

// MarkUp returns the machine to service.  Idempotent.
func (m *Machine) MarkUp() { m.down = false }

// Fits reports whether a demand fits into the remaining free space.
// This is the linear half of Equation 6.  A down machine fits
// nothing, which is what keeps every search path (indexed, naive,
// migration, preemption) off failed hardware.
func (m *Machine) Fits(demand resource.Vector) bool {
	return !m.down && demand.Fits(m.Free())
}

// Allocate places a container with the given demand.  It returns an
// error if the machine is down, the container is already present or
// the demand does not fit; the machine is unchanged on error.
func (m *Machine) Allocate(containerID string, demand resource.Vector) error {
	if m.down {
		return fmt.Errorf("topology: machine %q is down", m.Name)
	}
	if _, ok := m.containers[containerID]; ok {
		return fmt.Errorf("topology: container %q already on machine %q", containerID, m.Name)
	}
	if !m.Fits(demand) {
		return fmt.Errorf("topology: container %q (%s) does not fit on %q (free %s)",
			containerID, demand, m.Name, m.Free())
	}
	m.containers[containerID] = demand
	m.used = m.used.Add(demand)
	if m.idsCache != nil {
		// Keep the cache sorted incrementally: one insertion beats
		// re-sorting the whole list on the next read.
		i := sort.SearchStrings(m.idsCache, containerID)
		m.idsCache = append(m.idsCache, "")
		copy(m.idsCache[i+1:], m.idsCache[i:])
		m.idsCache[i] = containerID
	}
	return nil
}

// Release removes a container, returning its demand.  It returns an
// error if the container is not present.
func (m *Machine) Release(containerID string) (resource.Vector, error) {
	demand, ok := m.containers[containerID]
	if !ok {
		return resource.Vector{}, fmt.Errorf("topology: container %q not on machine %q", containerID, m.Name)
	}
	delete(m.containers, containerID)
	m.used = m.used.Sub(demand)
	if m.idsCache != nil {
		if i := sort.SearchStrings(m.idsCache, containerID); i < len(m.idsCache) && m.idsCache[i] == containerID {
			m.idsCache = append(m.idsCache[:i], m.idsCache[i+1:]...)
		}
	}
	return demand, nil
}

// Reset removes every container.
func (m *Machine) Reset() {
	m.containers = make(map[string]resource.Vector)
	m.used = resource.Vector{}
	m.idsCache = nil
}

// Utilization returns mean used/capacity across dimensions.
func (m *Machine) Utilization() float64 {
	return resource.Utilization(m.used, m.capacity)
}

// CPUUtilization returns used/capacity on the CPU dimension only.
func (m *Machine) CPUUtilization() float64 {
	return resource.CPUUtilization(m.used, m.capacity)
}

// Rack groups machines that share a top-of-rack switch.
type Rack struct {
	Name     string
	Cluster  string
	Machines []MachineID
}

// SubCluster groups racks (the G tier of the flow network).
type SubCluster struct {
	Name  string
	Racks []string
}

// Cluster is the full machine inventory.
type Cluster struct {
	machines []*Machine
	racks    map[string]*Rack
	subs     map[string]*SubCluster
	rackOrd  []string
	subOrd   []string
}

// Config describes a homogeneous cluster layout.
type Config struct {
	// Machines is the total machine count.
	Machines int
	// MachinesPerRack controls rack sizing; defaults to 40 (a common
	// production rack size) when zero.
	MachinesPerRack int
	// RacksPerCluster controls sub-cluster sizing; defaults to 25.
	RacksPerCluster int
	// Capacity is per-machine capacity.  The paper's machines are
	// homogeneous 32 CPU / 64 GB.
	Capacity resource.Vector
}

// AlibabaConfig returns the paper's evaluation cluster shape at the
// given machine count: homogeneous 32-core / 64 GB machines.
func AlibabaConfig(machines int) Config {
	return Config{
		Machines: machines,
		Capacity: resource.Cores(32, 64*1024),
	}
}

// New builds a cluster from the configuration.
func New(cfg Config) *Cluster {
	perRack := cfg.MachinesPerRack
	if perRack <= 0 {
		perRack = 40
	}
	perCluster := cfg.RacksPerCluster
	if perCluster <= 0 {
		perCluster = 25
	}
	c := &Cluster{
		racks: make(map[string]*Rack),
		subs:  make(map[string]*SubCluster),
	}
	for i := 0; i < cfg.Machines; i++ {
		rackIdx := i / perRack
		subIdx := rackIdx / perCluster
		rackName := fmt.Sprintf("rack-%04d", rackIdx)
		subName := fmt.Sprintf("cluster-%02d", subIdx)
		m := NewMachine(MachineID(i), fmt.Sprintf("machine-%05d", i), rackName, subName, cfg.Capacity)
		c.machines = append(c.machines, m)

		rack, ok := c.racks[rackName]
		if !ok {
			rack = &Rack{Name: rackName, Cluster: subName}
			c.racks[rackName] = rack
			c.rackOrd = append(c.rackOrd, rackName)
			sub, ok := c.subs[subName]
			if !ok {
				sub = &SubCluster{Name: subName}
				c.subs[subName] = sub
				c.subOrd = append(c.subOrd, subName)
			}
			sub.Racks = append(sub.Racks, rackName)
		}
		rack.Machines = append(rack.Machines, m.ID)
	}
	return c
}

// MachineSpec describes one machine for FromSpecs: an explicit
// (name, rack, sub-cluster, capacity, availability) tuple.  Machine
// IDs are assigned densely in spec order, so a spec list captured
// from a live cluster in ID order rebuilds the identical topology —
// including rack boundaries that New's arithmetic layout cannot
// express (NewHeterogeneous starts a fresh rack per machine class).
type MachineSpec struct {
	Name    string
	Rack    string
	Cluster string
	// Capacity is the machine's total resources.
	Capacity resource.Vector
	// Down marks the machine out of service at construction.
	Down bool
}

// FromSpecs rebuilds a cluster from explicit machine specs — the
// restore path of a checkpoint.  Racks and sub-clusters are created
// in first-seen order, exactly as New and NewHeterogeneous do, so a
// spec list read off a live cluster in machine-ID order reproduces
// the same traversal order (and therefore the same scheduling
// decisions).  Validation rejects empty or duplicate machine names,
// empty rack/sub-cluster names, negative or zero capacities, and a
// rack claimed by two different sub-clusters.
func FromSpecs(specs []MachineSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("topology: no machine specs")
	}
	c := &Cluster{
		racks: make(map[string]*Rack),
		subs:  make(map[string]*SubCluster),
	}
	seen := make(map[string]bool, len(specs))
	for i, sp := range specs {
		if sp.Name == "" || sp.Rack == "" || sp.Cluster == "" {
			return nil, fmt.Errorf("topology: spec %d: empty name, rack or cluster", i)
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("topology: duplicate machine name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Capacity.CPUMilli < 0 || sp.Capacity.MemMB < 0 {
			return nil, fmt.Errorf("topology: machine %q has negative capacity %s", sp.Name, sp.Capacity)
		}
		if sp.Capacity.Zero() {
			return nil, fmt.Errorf("topology: machine %q has zero capacity", sp.Name)
		}
		m := NewMachine(MachineID(i), sp.Name, sp.Rack, sp.Cluster, sp.Capacity)
		if sp.Down {
			m.MarkDown()
		}
		c.machines = append(c.machines, m)

		rack, ok := c.racks[sp.Rack]
		if !ok {
			rack = &Rack{Name: sp.Rack, Cluster: sp.Cluster}
			c.racks[sp.Rack] = rack
			c.rackOrd = append(c.rackOrd, sp.Rack)
			sub, ok := c.subs[sp.Cluster]
			if !ok {
				sub = &SubCluster{Name: sp.Cluster}
				c.subs[sp.Cluster] = sub
				c.subOrd = append(c.subOrd, sp.Cluster)
			}
			sub.Racks = append(sub.Racks, sp.Rack)
		} else if rack.Cluster != sp.Cluster {
			return nil, fmt.Errorf("topology: rack %q claimed by sub-clusters %q and %q",
				sp.Rack, rack.Cluster, sp.Cluster)
		}
		rack.Machines = append(rack.Machines, m.ID)
	}
	return c, nil
}

// Specs captures the cluster as a FromSpecs input, in machine-ID
// order: FromSpecs(c.Specs()) rebuilds an empty copy of the same
// topology (allocations are not part of a spec).
func (c *Cluster) Specs() []MachineSpec {
	out := make([]MachineSpec, len(c.machines))
	for i, m := range c.machines {
		out[i] = MachineSpec{
			Name:     m.Name,
			Rack:     m.Rack,
			Cluster:  m.Cluster,
			Capacity: m.Capacity(),
			Down:     !m.Up(),
		}
	}
	return out
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns the machine with the given ID, or nil if out of
// range.
func (c *Cluster) Machine(id MachineID) *Machine {
	if id < 0 || int(id) >= len(c.machines) {
		return nil
	}
	return c.machines[id]
}

// Machines returns all machines in ID order.  The returned slice is
// shared; callers must not mutate it.
func (c *Cluster) Machines() []*Machine { return c.machines }

// Racks returns rack names in creation order.
func (c *Cluster) Racks() []string { return c.rackOrd }

// Rack returns the named rack, or nil.
func (c *Cluster) Rack(name string) *Rack { return c.racks[name] }

// SubClusters returns sub-cluster names in creation order.
func (c *Cluster) SubClusters() []string { return c.subOrd }

// SubCluster returns the named sub-cluster, or nil.
func (c *Cluster) SubCluster(name string) *SubCluster { return c.subs[name] }

// Span is a half-open [Lo, Hi) range of positions in a Traversal.
type Span struct{ Lo, Hi int }

// Len returns the number of positions in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Traversal fixes the canonical tier walk of the flow network —
// sub-clusters in creation order, each sub-cluster's racks in order,
// each rack's machines in order — as a flat machine sequence.  Racks
// and sub-clusters are contiguous spans of that sequence, which is
// what lets a single tournament tree over the traversal answer
// per-rack, per-sub-cluster and whole-cluster residual-capacity
// queries (internal/core's search index).
type Traversal struct {
	// Order maps position → machine, in tier walk order.
	Order []MachineID
	// Pos maps machine → position (the inverse of Order).
	Pos []int
	// RackSpan and SubSpan locate each rack / sub-cluster in Order.
	RackSpan map[string]Span
	SubSpan  map[string]Span
}

// Traverse materialises the canonical tier walk.  For clusters built
// by New and NewHeterogeneous the traversal order equals machine-ID
// order; the explicit mapping keeps index-based searchers correct for
// any hand-built topology.
func (c *Cluster) Traverse() Traversal {
	tr := Traversal{
		Order:    make([]MachineID, 0, len(c.machines)),
		Pos:      make([]int, len(c.machines)),
		RackSpan: make(map[string]Span, len(c.racks)),
		SubSpan:  make(map[string]Span, len(c.subs)),
	}
	for _, gname := range c.subOrd {
		subLo := len(tr.Order)
		for _, rname := range c.subs[gname].Racks {
			rackLo := len(tr.Order)
			for _, mid := range c.racks[rname].Machines {
				tr.Pos[mid] = len(tr.Order)
				tr.Order = append(tr.Order, mid)
			}
			tr.RackSpan[rname] = Span{Lo: rackLo, Hi: len(tr.Order)}
		}
		tr.SubSpan[gname] = Span{Lo: subLo, Hi: len(tr.Order)}
	}
	return tr
}

// Reset clears every machine's allocation.
func (c *Cluster) Reset() {
	for _, m := range c.machines {
		m.Reset()
	}
}

// DownMachines counts machines currently out of service.
func (c *Cluster) DownMachines() int {
	n := 0
	for _, m := range c.machines {
		if !m.Up() {
			n++
		}
	}
	return n
}

// UsedMachines counts machines hosting at least one container.  This
// is the num(sched) metric of Equation 10.
func (c *Cluster) UsedMachines() int {
	n := 0
	for _, m := range c.machines {
		if m.NumContainers() > 0 {
			n++
		}
	}
	return n
}

// TotalUsed sums allocated resources over all machines.
func (c *Cluster) TotalUsed() resource.Vector {
	var total resource.Vector
	for _, m := range c.machines {
		total = total.Add(m.Used())
	}
	return total
}

// TotalCapacity sums capacity over all machines.
func (c *Cluster) TotalCapacity() resource.Vector {
	var total resource.Vector
	for _, m := range c.machines {
		total = total.Add(m.Capacity())
	}
	return total
}

// UtilizationRange returns (min, mean, max) CPU utilisation over
// machines that host at least one container, the statistic plotted in
// Fig. 11.  When no machine is used, all three are zero.
func (c *Cluster) UtilizationRange() (lo, mean, hi float64) {
	used := 0
	lo = 1.0
	for _, m := range c.machines {
		if m.NumContainers() == 0 {
			continue
		}
		u := m.CPUUtilization()
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
		mean += u
		used++
	}
	if used == 0 {
		return 0, 0, 0
	}
	return lo, mean / float64(used), hi
}
