package topology

import (
	"fmt"

	"aladdin/internal/resource"
)

// MachineClass describes one hardware generation in a heterogeneous
// cluster (the paper's stated future work: "extend the flow-based
// model to support heterogeneous workloads").  The flow network model
// needs no change — capacities are per-machine vectors already — so
// heterogeneity is purely a construction concern.
type MachineClass struct {
	// Name labels the class, e.g. "gen1-32c".
	Name string
	// Count is how many machines of this class to build.
	Count int
	// Capacity is the per-machine capacity.
	Capacity resource.Vector
}

// HeteroConfig describes a heterogeneous cluster layout.
type HeteroConfig struct {
	Classes []MachineClass
	// MachinesPerRack / RacksPerCluster as in Config; racks never mix
	// classes (the common datacenter reality: a rack is one SKU).
	MachinesPerRack int
	RacksPerCluster int
}

// NewHeterogeneous builds a cluster whose racks are grouped by
// machine class.
func NewHeterogeneous(cfg HeteroConfig) (*Cluster, error) {
	perRack := cfg.MachinesPerRack
	if perRack <= 0 {
		perRack = 40
	}
	perCluster := cfg.RacksPerCluster
	if perCluster <= 0 {
		perCluster = 25
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("topology: heterogeneous cluster needs at least one class")
	}
	c := &Cluster{
		racks: make(map[string]*Rack),
		subs:  make(map[string]*SubCluster),
	}
	id := 0
	rackIdx := 0
	for ci, class := range cfg.Classes {
		if class.Count <= 0 {
			return nil, fmt.Errorf("topology: class %q has count %d", class.Name, class.Count)
		}
		if class.Capacity.Zero() {
			return nil, fmt.Errorf("topology: class %q has zero capacity", class.Name)
		}
		for k := 0; k < class.Count; k++ {
			// New rack when the previous is full or the class changes
			// (k == 0 forces a fresh rack per class).
			if k%perRack == 0 {
				rackIdx++
			}
			rackName := fmt.Sprintf("rack-%04d", rackIdx-1)
			subIdx := (rackIdx - 1) / perCluster
			subName := fmt.Sprintf("cluster-%02d", subIdx)
			name := fmt.Sprintf("machine-%05d-%s", id, class.Name)
			m := NewMachine(MachineID(id), name, rackName, subName, class.Capacity)
			id++
			c.machines = append(c.machines, m)
			rack, ok := c.racks[rackName]
			if !ok {
				rack = &Rack{Name: rackName, Cluster: subName}
				c.racks[rackName] = rack
				c.rackOrd = append(c.rackOrd, rackName)
				sub, ok := c.subs[subName]
				if !ok {
					sub = &SubCluster{Name: subName}
					c.subs[subName] = sub
					c.subOrd = append(c.subOrd, subName)
				}
				sub.Racks = append(sub.Racks, rackName)
			}
			rack.Machines = append(rack.Machines, m.ID)
		}
		_ = ci
	}
	return c, nil
}

// Classes summarises the distinct capacities present in the cluster,
// in first-seen order.
func (c *Cluster) Classes() []resource.Vector {
	var out []resource.Vector
	seen := map[resource.Vector]bool{}
	for _, m := range c.machines {
		if !seen[m.Capacity()] {
			seen[m.Capacity()] = true
			out = append(out, m.Capacity())
		}
	}
	return out
}
