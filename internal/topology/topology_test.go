package topology

import (
	"testing"
	"testing/quick"

	"aladdin/internal/resource"
)

func TestMachineAllocateRelease(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(32, 65536))
	if err := m.Allocate("a", resource.Cores(16, 32768)); err != nil {
		t.Fatalf("first allocate: %v", err)
	}
	if !m.Hosts("a") {
		t.Error("machine should host container a")
	}
	if m.NumContainers() != 1 {
		t.Errorf("NumContainers = %d", m.NumContainers())
	}
	if got := m.Used(); got != resource.Cores(16, 32768) {
		t.Errorf("Used = %v", got)
	}
	if got := m.Free(); got != resource.Cores(16, 32768) {
		t.Errorf("Free = %v", got)
	}
	demand, err := m.Release("a")
	if err != nil {
		t.Fatalf("release: %v", err)
	}
	if demand != resource.Cores(16, 32768) {
		t.Errorf("released demand = %v", demand)
	}
	if !m.Used().Zero() {
		t.Errorf("Used after release = %v", m.Used())
	}
}

func TestMachineAllocateDuplicate(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(32, 65536))
	if err := m.Allocate("a", resource.Cores(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate("a", resource.Cores(1, 1)); err == nil {
		t.Error("duplicate allocate should fail")
	}
	if m.Used() != resource.Cores(1, 1) {
		t.Errorf("failed allocate must not change used: %v", m.Used())
	}
}

func TestMachineAllocateOverflow(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(4, 1024))
	if err := m.Allocate("big", resource.Cores(5, 0)); err == nil {
		t.Error("over-capacity allocate should fail")
	}
	if err := m.Allocate("a", resource.Cores(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate("b", resource.Cores(2, 0)); err == nil {
		t.Error("allocate exceeding free should fail")
	}
	// Exactly filling must succeed.
	if err := m.Allocate("c", resource.Cores(1, 1024)); err != nil {
		t.Errorf("exact fill should succeed: %v", err)
	}
	if !m.Free().Zero() {
		t.Errorf("Free after exact fill = %v", m.Free())
	}
}

func TestMachineReleaseUnknown(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(4, 1024))
	if _, err := m.Release("ghost"); err == nil {
		t.Error("releasing unknown container should fail")
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(4, 1024))
	if err := m.Allocate("a", resource.Cores(2, 512)); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.NumContainers() != 0 || !m.Used().Zero() {
		t.Error("Reset should clear allocation")
	}
	// Machine is reusable after reset.
	if err := m.Allocate("a", resource.Cores(4, 1024)); err != nil {
		t.Errorf("allocate after reset: %v", err)
	}
}

func TestMachineContainerIDsSorted(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(32, 65536))
	for _, id := range []string{"c", "a", "b"} {
		if err := m.Allocate(id, resource.Cores(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := m.ContainerIDs()
	want := []string{"a", "b", "c"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ContainerIDs = %v, want %v", ids, want)
		}
	}
}

func TestMachineUtilization(t *testing.T) {
	m := NewMachine(0, "m0", "r0", "c0", resource.Cores(32, 1024))
	if err := m.Allocate("a", resource.Cores(16, 256)); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUUtilization(); got != 0.5 {
		t.Errorf("CPUUtilization = %v", got)
	}
	if got := m.Utilization(); got != (0.5+0.25)/2 {
		t.Errorf("Utilization = %v", got)
	}
}

func TestClusterLayout(t *testing.T) {
	c := New(Config{Machines: 100, MachinesPerRack: 10, RacksPerCluster: 5, Capacity: resource.Cores(32, 65536)})
	if c.Size() != 100 {
		t.Fatalf("Size = %d", c.Size())
	}
	if got := len(c.Racks()); got != 10 {
		t.Errorf("racks = %d, want 10", got)
	}
	if got := len(c.SubClusters()); got != 2 {
		t.Errorf("sub-clusters = %d, want 2", got)
	}
	// Every machine belongs to the rack it claims.
	for _, m := range c.Machines() {
		rack := c.Rack(m.Rack)
		if rack == nil {
			t.Fatalf("machine %s references unknown rack %s", m.Name, m.Rack)
		}
		found := false
		for _, id := range rack.Machines {
			if id == m.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("machine %s missing from rack %s membership", m.Name, m.Rack)
		}
		if rack.Cluster != m.Cluster {
			t.Errorf("machine %s cluster %s != rack cluster %s", m.Name, m.Cluster, rack.Cluster)
		}
	}
	// Racks partition machines.
	total := 0
	for _, name := range c.Racks() {
		total += len(c.Rack(name).Machines)
	}
	if total != 100 {
		t.Errorf("rack membership covers %d machines, want 100", total)
	}
	// Sub-clusters partition racks.
	totalRacks := 0
	for _, name := range c.SubClusters() {
		totalRacks += len(c.SubCluster(name).Racks)
	}
	if totalRacks != 10 {
		t.Errorf("sub-cluster membership covers %d racks, want 10", totalRacks)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := New(Config{Machines: 85, Capacity: resource.Cores(32, 65536)})
	// default 40 per rack -> 3 racks
	if got := len(c.Racks()); got != 3 {
		t.Errorf("default racks = %d, want 3", got)
	}
}

func TestAlibabaConfig(t *testing.T) {
	cfg := AlibabaConfig(500)
	if cfg.Machines != 500 {
		t.Errorf("Machines = %d", cfg.Machines)
	}
	if cfg.Capacity != resource.Cores(32, 64*1024) {
		t.Errorf("Capacity = %v", cfg.Capacity)
	}
}

func TestClusterMachineLookup(t *testing.T) {
	c := New(AlibabaConfig(10))
	if c.Machine(3) == nil || c.Machine(3).ID != 3 {
		t.Error("Machine(3) lookup failed")
	}
	if c.Machine(-1) != nil {
		t.Error("Machine(-1) should be nil")
	}
	if c.Machine(10) != nil {
		t.Error("Machine(out of range) should be nil")
	}
}

func TestClusterUsedMachinesAndReset(t *testing.T) {
	c := New(AlibabaConfig(5))
	if c.UsedMachines() != 0 {
		t.Error("fresh cluster should have 0 used machines")
	}
	if err := c.Machine(0).Allocate("a", resource.Cores(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Machine(2).Allocate("b", resource.Cores(2, 2)); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedMachines(); got != 2 {
		t.Errorf("UsedMachines = %d", got)
	}
	if got := c.TotalUsed(); got != resource.Cores(3, 3) {
		t.Errorf("TotalUsed = %v", got)
	}
	if got := c.TotalCapacity(); got != resource.Cores(32*5, 64*1024*5) {
		t.Errorf("TotalCapacity = %v", got)
	}
	c.Reset()
	if c.UsedMachines() != 0 || !c.TotalUsed().Zero() {
		t.Error("Reset should clear the cluster")
	}
}

func TestUtilizationRange(t *testing.T) {
	c := New(AlibabaConfig(4))
	lo, mean, hi := c.UtilizationRange()
	if lo != 0 || mean != 0 || hi != 0 {
		t.Errorf("empty cluster range = %v/%v/%v", lo, mean, hi)
	}
	// 8/32 = 0.25 on one machine, 16/32 = 0.5 on another.
	if err := c.Machine(0).Allocate("a", resource.Cores(8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Machine(1).Allocate("b", resource.Cores(16, 1)); err != nil {
		t.Fatal(err)
	}
	lo, mean, hi = c.UtilizationRange()
	if lo != 0.25 || hi != 0.5 {
		t.Errorf("range = %v..%v", lo, hi)
	}
	if mean != 0.375 {
		t.Errorf("mean = %v", mean)
	}
}

// Property: a random sequence of allocations never leaves used >
// capacity, and releasing everything restores the empty machine.
func TestQuickAllocationInvariants(t *testing.T) {
	f := func(demandsRaw []uint16) bool {
		m := NewMachine(0, "m", "r", "c", resource.Cores(32, 65536))
		var placed []string
		for i, raw := range demandsRaw {
			d := resource.Milli(int64(raw)%40000, int64(raw)*2%70000)
			id := string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
			if err := m.Allocate(id, d); err == nil {
				placed = append(placed, id)
			}
			if !m.Used().Fits(m.Capacity()) {
				return false
			}
		}
		for _, id := range placed {
			if _, err := m.Release(id); err != nil {
				return false
			}
		}
		return m.Used().Zero() && m.NumContainers() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromSpecsRoundTrip(t *testing.T) {
	// A homogeneous cluster rebuilds identically from its own specs.
	orig := New(Config{Machines: 90, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 65536)})
	orig.Machine(7).MarkDown()
	back, err := FromSpecs(orig.Specs())
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopology(t, orig, back)
	if back.Machine(7).Up() {
		t.Error("down state not restored")
	}
	if back.DownMachines() != 1 {
		t.Errorf("DownMachines = %d, want 1", back.DownMachines())
	}
}

func TestFromSpecsHeterogeneousRoundTrip(t *testing.T) {
	// NewHeterogeneous breaks racks at class boundaries; layout
	// arithmetic cannot reproduce that, specs must.
	orig, err := NewHeterogeneous(HeteroConfig{
		MachinesPerRack: 4,
		Classes: []MachineClass{
			{Name: "big", Count: 6, Capacity: resource.Cores(64, 128*1024)},
			{Name: "small", Count: 5, Capacity: resource.Cores(16, 32*1024)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSpecs(orig.Specs())
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopology(t, orig, back)
}

func assertSameTopology(t *testing.T, a, b *Cluster) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("size %d != %d", b.Size(), a.Size())
	}
	for i := 0; i < a.Size(); i++ {
		ma, mb := a.Machine(MachineID(i)), b.Machine(MachineID(i))
		if ma.Name != mb.Name || ma.Rack != mb.Rack || ma.Cluster != mb.Cluster ||
			ma.Capacity() != mb.Capacity() {
			t.Fatalf("machine %d differs: %+v vs %+v", i, ma, mb)
		}
	}
	ta, tb := a.Traverse(), b.Traverse()
	if len(ta.Order) != len(tb.Order) {
		t.Fatalf("traversal length differs")
	}
	for i := range ta.Order {
		if ta.Order[i] != tb.Order[i] {
			t.Fatalf("traversal position %d: %d vs %d", i, ta.Order[i], tb.Order[i])
		}
	}
	if len(a.Racks()) != len(b.Racks()) || len(a.SubClusters()) != len(b.SubClusters()) {
		t.Fatalf("rack/sub-cluster counts differ")
	}
	for i, rn := range a.Racks() {
		if b.Racks()[i] != rn {
			t.Fatalf("rack order differs at %d: %s vs %s", i, rn, b.Racks()[i])
		}
	}
}

func TestFromSpecsValidation(t *testing.T) {
	good := MachineSpec{Name: "m0", Rack: "r0", Cluster: "c0", Capacity: resource.Cores(1, 1024)}
	cases := []struct {
		name  string
		specs []MachineSpec
	}{
		{"empty", nil},
		{"no name", []MachineSpec{{Rack: "r0", Cluster: "c0", Capacity: good.Capacity}}},
		{"no rack", []MachineSpec{{Name: "m0", Cluster: "c0", Capacity: good.Capacity}}},
		{"no cluster", []MachineSpec{{Name: "m0", Rack: "r0", Capacity: good.Capacity}}},
		{"duplicate name", []MachineSpec{good, good}},
		{"zero capacity", []MachineSpec{{Name: "m0", Rack: "r0", Cluster: "c0"}}},
		{"negative capacity", []MachineSpec{{Name: "m0", Rack: "r0", Cluster: "c0",
			Capacity: resource.Milli(-1, 10)}}},
		{"rack in two clusters", []MachineSpec{good,
			{Name: "m1", Rack: "r0", Cluster: "c1", Capacity: good.Capacity}}},
	}
	for _, tc := range cases {
		if _, err := FromSpecs(tc.specs); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
