package obs

import "sync"

// EventKind discriminates scheduler trace events.
type EventKind uint8

const (
	// EvPlaceStart marks the start of a batch placement round; N is
	// the batch size.
	EvPlaceStart EventKind = iota
	// EvAugmentingPath marks one container routed onto a machine
	// (one augmenting path in the flow network).
	EvAugmentingPath
	// EvPreempt marks one victim container preempted to make room;
	// Victim names it, Container names the beneficiary.
	EvPreempt
	// EvMigrate marks one resident container relocated; Machine is
	// the destination.
	EvMigrate
	// EvRollbackCorruption marks a failed rollback: the session state
	// is no longer trustworthy.  Detail carries the operation name.
	EvRollbackCorruption
	// EvFailMachine marks a machine taken out of service; N is the
	// number of evicted residents.
	EvFailMachine
	// EvRecoverMachine marks a machine returned to service.
	EvRecoverMachine
)

// String names the event kind for logs and JSON dumps.
func (k EventKind) String() string {
	switch k {
	case EvPlaceStart:
		return "place_start"
	case EvAugmentingPath:
		return "augmenting_path"
	case EvPreempt:
		return "preempt"
	case EvMigrate:
		return "migrate"
	case EvRollbackCorruption:
		return "rollback_corruption"
	case EvFailMachine:
		return "fail_machine"
	case EvRecoverMachine:
		return "recover_machine"
	}
	return "unknown"
}

// Event is one structured scheduler decision.  It is passed by value
// so emitting with no sink attached never escapes to the heap.
type Event struct {
	Kind EventKind
	// Container is the subject container ID (beneficiary, for
	// preemptions), empty when the event is machine-scoped.
	Container string
	// Victim is the displaced container for EvPreempt/EvMigrate.
	Victim string
	// Machine is the machine ordinal involved, -1 when not
	// applicable.
	Machine int64
	// Detail is free-form context (operation name for corruption
	// events).
	Detail string
	// N is an event-specific count (batch size, evictions).
	N int64
}

// Sink receives events.  Implementations must be safe for concurrent
// use if the tracer is shared across goroutines.
type Sink interface {
	Event(Event)
}

// Tracer fans scheduler events out to a sink.  A nil *Tracer is the
// disabled tracer: Emit on it is a two-instruction no-op with zero
// allocations (benchmarked by BenchmarkTracerDisabled and guarded in
// CI), so instrumented code calls Emit unconditionally.
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink.  A nil sink yields a nil tracer so the
// disabled fast path stays a single pointer check.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether events reach a sink; callers can gate
// expensive event construction (string formatting) on it.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit delivers the event to the sink, if any.
func (t *Tracer) Emit(e Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Event(e)
}

// SliceSink collects events in memory; handy for tests and for
// post-run dumps.  Safe for concurrent use.
type SliceSink struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e.
func (s *SliceSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a copy of the collected events.
func (s *SliceSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Count returns how many events of kind k were collected.
func (s *SliceSink) Count(k EventKind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
