package obs

import "testing"

func TestTracerDelivery(t *testing.T) {
	sink := &SliceSink{}
	tr := NewTracer(sink)
	if !tr.Enabled() {
		t.Fatalf("tracer with sink reports disabled")
	}
	tr.Emit(Event{Kind: EvPlaceStart, N: 3})
	tr.Emit(Event{Kind: EvAugmentingPath, Container: "web-0", Machine: 2})
	tr.Emit(Event{Kind: EvPreempt, Container: "web-0", Victim: "batch-1", Machine: 2})

	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("collected %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvPlaceStart || evs[0].N != 3 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[2].Victim != "batch-1" {
		t.Fatalf("event 2 victim = %q", evs[2].Victim)
	}
	if sink.Count(EvPreempt) != 1 || sink.Count(EvMigrate) != 0 {
		t.Fatalf("Count miscounted")
	}
}

func TestNilTracer(t *testing.T) {
	tr := NewTracer(nil)
	if tr != nil {
		t.Fatalf("NewTracer(nil) = %v, want nil", tr)
	}
	if tr.Enabled() {
		t.Fatalf("nil tracer reports enabled")
	}
	// Must not panic.
	tr.Emit(Event{Kind: EvMigrate, Container: "x"})
}

func TestNilTracerEmitAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{
			Kind:      EvAugmentingPath,
			Container: "web-0",
			Machine:   7,
			N:         1,
		})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer Emit allocates %v bytes/op, want 0", allocs)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		EvPlaceStart:         "place_start",
		EvAugmentingPath:     "augmenting_path",
		EvPreempt:            "preempt",
		EvMigrate:            "migrate",
		EvRollbackCorruption: "rollback_corruption",
		EvFailMachine:        "fail_machine",
		EvRecoverMachine:     "recover_machine",
		EventKind(99):        "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
