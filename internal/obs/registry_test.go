package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("arrivals_total", "arrivals")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("machines_up", "up machines")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	// Re-registration returns the same handle.
	if r.Counter("arrivals_total", "different help") != c {
		t.Fatalf("re-registration returned a new counter")
	}
	if !r.Has("arrivals_total") || r.Has("missing") {
		t.Fatalf("Has misreported registration state")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(5)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil handles returned non-zero values")
	}

	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("y", "") != nil || r.Histogram("z", "", LatencyBucketsUS) != nil {
		t.Fatalf("nil registry handed out live handles")
	}
	if r.Has("x") {
		t.Fatalf("nil registry claims to have metrics")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 999, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat_us"]
	// Bucket layout: [<=10, <=100, <=1000, overflow].
	want := []int64{3, 2, 2, 2}
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c, want[i], snap.Counts)
		}
	}
	if snap.Count != 9 {
		t.Fatalf("count = %d, want 9", snap.Count)
	}
	wantSum := int64(0 + 0 + 10 + 11 + 100 + 999 + 1000 + 1001 + 1<<40)
	if snap.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", snap.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_us", "q", []int64{10, 20, 40})
	// 10 observations spread evenly through the first bucket's range.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	snap := r.Snapshot().Histograms["q_us"]
	if got := snap.Quantile(0.5); got <= 0 || got > 10 {
		t.Fatalf("p50 = %v, want in (0, 10]", got)
	}
	if got, want := snap.Quantile(1.0), 10.0; got != want {
		t.Fatalf("p100 = %v, want %v", got, want)
	}
	// Overflow-bucket ranks report the last finite bound.
	h.Observe(1 << 30)
	snap = r.Snapshot().Histograms["q_us"]
	if got, want := snap.Quantile(1.0), 40.0; got != want {
		t.Fatalf("p100 with overflow = %v, want %v", got, want)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	h := r.Histogram("c_us", "a histogram", []int64{1, 5})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge",
		"a_gauge -2",
		"# HELP b_total a counter",
		"# TYPE b_total counter",
		"b_total 3",
		"# HELP c_us a histogram",
		"# TYPE c_us histogram",
		`c_us_bucket{le="1"} 1`,
		`c_us_bucket{le="5"} 2`,
		`c_us_bucket{le="+Inf"} 3`,
		"c_us_sum 13",
		"c_us_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Histogram("h_us", "", []int64{1}).Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if snap.Counters["a_total"] != 7 {
		t.Fatalf("counter through JSON = %d, want 7", snap.Counters["a_total"])
	}
	hs := snap.Histograms["h_us"]
	if hs.Count != 1 || hs.Sum != 2 {
		t.Fatalf("histogram through JSON = %+v", hs)
	}
}

// TestSnapshotConsistencyUnderWriters is the property test from the
// issue: snapshots taken concurrently with 8 writer goroutines must
// be internally consistent — every histogram satisfies count ==
// sum(bucket counts), counters are monotone across snapshots — and
// after the writers join the totals are exact.
func TestSnapshotConsistencyUnderWriters(t *testing.T) {
	const (
		writers = 8
		perG    = 2000
	)
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat_us", "", LatencyBucketsUS)
	g := r.Gauge("inflight", "")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64((w*perG + i) % 2_000_000))
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(start)

	var prevCounter int64
	for {
		snap := r.Snapshot()
		hs := snap.Histograms["lat_us"]
		var bucketSum int64
		for _, n := range hs.Counts {
			bucketSum += n
		}
		if hs.Count != bucketSum {
			t.Fatalf("histogram count %d != bucket sum %d", hs.Count, bucketSum)
		}
		if cur := snap.Counters["ops_total"]; cur < prevCounter {
			t.Fatalf("counter went backwards: %d -> %d", prevCounter, cur)
		} else {
			prevCounter = cur
		}
		select {
		case <-done:
			final := r.Snapshot()
			if got, want := final.Counters["ops_total"], int64(writers*perG); got != want {
				t.Fatalf("final counter = %d, want %d", got, want)
			}
			if got, want := final.Histograms["lat_us"].Count, int64(writers*perG); got != want {
				t.Fatalf("final histogram count = %d, want %d", got, want)
			}
			if got := final.Gauges["inflight"]; got != 0 {
				t.Fatalf("final gauge = %d, want 0", got)
			}
			return
		default:
		}
	}
}

func TestLabeledSeriesDistinctAndIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.LabeledCounter("tenant_requests_total", "requests", Labels{"tenant": "a"})
	b := r.LabeledCounter("tenant_requests_total", "requests", Labels{"tenant": "b"})
	plain := r.Counter("tenant_requests_total", "requests")
	if a == b || a == plain || b == plain {
		t.Fatal("distinct label sets shared a handle")
	}
	a.Add(3)
	b.Inc()
	plain.Add(7)
	if a.Value() != 3 || b.Value() != 1 || plain.Value() != 7 {
		t.Fatalf("labeled series cross-talk: a=%d b=%d plain=%d", a.Value(), b.Value(), plain.Value())
	}
	// Same labels, any map identity: same handle.
	if r.LabeledCounter("tenant_requests_total", "x", Labels{"tenant": "a"}) != a {
		t.Fatal("re-registration with equal labels returned a new handle")
	}
	// Gauges and histograms label the same way.
	ga := r.LabeledGauge("tenant_depth", "", Labels{"tenant": "a"})
	gb := r.LabeledGauge("tenant_depth", "", Labels{"tenant": "b"})
	ga.Set(2)
	gb.Set(5)
	if ga.Value() != 2 || gb.Value() != 5 {
		t.Fatalf("labeled gauges cross-talk: %d %d", ga.Value(), gb.Value())
	}
	ha := r.LabeledHistogram("tenant_lat_us", "", []int64{10, 100}, Labels{"tenant": "a"})
	hb := r.LabeledHistogram("tenant_lat_us", "", []int64{10, 100}, Labels{"tenant": "b"})
	ha.Observe(5)
	hb.Observe(50)
	if ha.snapshot().Count != 1 || hb.snapshot().Count != 1 {
		t.Fatal("labeled histograms cross-talk")
	}
}

func TestLabeledCanonicalOrdering(t *testing.T) {
	// Key order in the Labels map must not matter.
	r := NewRegistry()
	x := r.LabeledCounter("m_total", "", Labels{"b": "2", "a": "1"})
	y := r.LabeledCounter("m_total", "", Labels{"a": "1", "b": "2"})
	if x != y {
		t.Fatal("label canonicalisation is map-order sensitive")
	}
	x.Inc()
	snap := r.Snapshot()
	if got := snap.Counters[`m_total{a="1",b="2"}`]; got != 1 {
		t.Fatalf("snapshot keys = %v, want canonical m_total{a=\"1\",b=\"2\"}", snap.Counters)
	}
}

func TestLabeledExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests").Add(4)
	r.LabeledCounter("req_total", "requests", Labels{"tenant": "blue"}).Add(2)
	r.LabeledCounter("req_total", "requests", Labels{"tenant": "amber"}).Inc()
	r.LabeledGauge("depth", "queue depth", Labels{"tenant": "blue"}).Set(3)
	h := r.LabeledHistogram("lat_us", "latency", []int64{10, 100}, Labels{"tenant": "blue"})
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP depth queue depth",
		"# TYPE depth gauge",
		`depth{tenant="blue"} 3`,
		"# HELP lat_us latency",
		"# TYPE lat_us histogram",
		`lat_us_bucket{tenant="blue",le="10"} 1`,
		`lat_us_bucket{tenant="blue",le="100"} 2`,
		`lat_us_bucket{tenant="blue",le="+Inf"} 2`,
		`lat_us_sum{tenant="blue"} 55`,
		`lat_us_count{tenant="blue"} 2`,
		"# HELP req_total requests",
		"# TYPE req_total counter",
		"req_total 4",
		`req_total{tenant="amber"} 1`,
		`req_total{tenant="blue"} 2`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("labeled exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("esc_total", "", Labels{"q": "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped sample missing:\n%s\nwant line: %s", buf.String(), want)
	}
}

func TestLabeledHistogramSharesBounds(t *testing.T) {
	r := NewRegistry()
	r.LabeledHistogram("shared_us", "", []int64{1, 2, 3}, Labels{"t": "a"})
	hb := r.LabeledHistogram("shared_us", "", []int64{999}, Labels{"t": "b"})
	if got := len(hb.snapshot().Bounds); got != 3 {
		t.Fatalf("second registration got %d bounds, want the family's 3", got)
	}
}
