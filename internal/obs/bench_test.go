package obs

import "testing"

// BenchmarkTracerDisabled is the CI alloc guard: emitting on a nil
// tracer must be a no-op with 0 allocs/op, otherwise the PR 1 indexed
// search hot path pays for disabled telemetry.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{
			Kind:      EvAugmentingPath,
			Container: "web-0",
			Machine:   int64(i),
			N:         1,
		})
	}
}

// BenchmarkCounterDisabled measures the nil-counter fast path used by
// uninstrumented sessions.
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the live (enabled) observation
// cost: one binary search over ~20 bounds plus two atomic adds.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "", LatencyBucketsUS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1_000_000))
	}
}
