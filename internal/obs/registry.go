// Package obs is the scheduler's observability substrate: a
// stdlib-only metrics registry (counters, gauges and fixed-bucket
// histograms, all exact int64 — consistent with the intcap rule that
// scheduler arithmetic never rounds) and a structured event tracer
// for placement decisions.  Quincy-lineage schedulers (Firmament,
// OSDI 2016) and production LLA schedulers (Medea, EuroSys 2018)
// treat solver-phase timing and decision telemetry as first-class;
// this package gives the repro the same substrate without pulling in
// a client library.
//
// Everything is safe for concurrent use.  Metric handles are
// nil-receiver tolerant: instrumented code holds possibly-nil
// *Counter/*Gauge/*Histogram fields and calls them unconditionally —
// with metrics disabled every call is a nil-check no-op that
// allocates nothing, so the hot path does not pay for the telemetry
// it is not emitting.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// LatencyBucketsUS is the shared microsecond bucket ladder for phase
// latency histograms: sub-microsecond searches land in the first
// bucket, a pathological full-second batch in the last.
var LatencyBucketsUS = []int64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// Counter is a monotonically non-decreasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative deltas are ignored so the counter stays
// monotone (use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket int64 histogram.  Bounds are inclusive
// upper bounds in ascending order; one implicit overflow bucket
// catches everything beyond the last bound.  The observation count is
// derived from the bucket counts at snapshot time, so a snapshot
// taken concurrently with writers always satisfies
// count == sum(bucket counts).
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	sum     atomic.Int64
}

// Observe records one value.  Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	// Binary search for the first bound >= v; linear would do for ~20
	// buckets but the ladder length is caller-chosen.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// snapshot reads the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// metricKind discriminates registered families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one registered metric: its metadata plus exactly one of
// the three handles.
type family struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition or a JSON snapshot.  Registration is idempotent:
// re-registering a name of the same kind returns the existing handle
// (the first registration's help text and buckets win), so every
// scheduling run over a shared registry accumulates into the same
// series.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register resolves or creates a family; a kind clash is a
// programming error and panics.
func (r *Registry) register(name, help string, kind metricKind) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		switch kind {
		case kindCounter:
			f.c = &Counter{}
		case kindGauge:
			f.g = &Gauge{}
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, help, kindCounter).c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, help, kindGauge).g
}

// Histogram returns the named histogram, registering it on first use
// with the given ascending bucket bounds (the overflow bucket is
// implicit).  An existing registration keeps its original bounds.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindHistogram)
	if f.h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %d", name, i))
			}
		}
		f.h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return f.h
}

// Has reports whether a metric of any kind is registered under name.
func (r *Registry) Has(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.fams[name]
	return ok
}

// sorted returns the families in name order (stable exposition).
func (r *Registry) sorted() []*family {
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// HistogramSnapshot is a point-in-time histogram reading.  Counts are
// per-bucket (non-cumulative); the last entry is the overflow bucket.
// Count always equals the sum of Counts by construction.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank.  The
// overflow bucket has no upper bound, so ranks landing there return
// the last finite bound.  Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= rank {
			if i >= len(s.Bounds) {
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lower := float64(0)
			if i > 0 {
				lower = float64(s.Bounds[i-1])
			}
			upper := float64(s.Bounds[i])
			frac := (rank - seen) / float64(c)
			return lower + (upper-lower)*frac
		}
		seen = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Snapshot is a point-in-time reading of the whole registry,
// JSON-marshalable for /debug/vars and -metrics-out dumps.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every metric.  Counters in successive snapshots are
// monotone non-decreasing; each histogram satisfies count ==
// sum(bucket counts) even while writers are concurrent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.fams {
		switch f.kind {
		case kindCounter:
			s.Counters[name] = f.c.Value()
		case kindGauge:
			s.Gauges[name] = f.g.Value()
		case kindHistogram:
			s.Histograms[name] = f.h.snapshot()
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders the registry as Prometheus text exposition
// (version 0.0.4): families in name order, each with # HELP and
// # TYPE lines; histograms expose cumulative le buckets plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := r.sorted()
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		switch f.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, f.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			snap := f.h.snapshot()
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", f.name, bound, cum); err != nil {
					return err
				}
			}
			cum += snap.Counts[len(snap.Counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", f.name, snap.Sum, f.name, cum); err != nil {
				return err
			}
		}
	}
	return nil
}
