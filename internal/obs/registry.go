// Package obs is the scheduler's observability substrate: a
// stdlib-only metrics registry (counters, gauges and fixed-bucket
// histograms, all exact int64 — consistent with the intcap rule that
// scheduler arithmetic never rounds) and a structured event tracer
// for placement decisions.  Quincy-lineage schedulers (Firmament,
// OSDI 2016) and production LLA schedulers (Medea, EuroSys 2018)
// treat solver-phase timing and decision telemetry as first-class;
// this package gives the repro the same substrate without pulling in
// a client library.
//
// Everything is safe for concurrent use.  Metric handles are
// nil-receiver tolerant: instrumented code holds possibly-nil
// *Counter/*Gauge/*Histogram fields and calls them unconditionally —
// with metrics disabled every call is a nil-check no-op that
// allocates nothing, so the hot path does not pay for the telemetry
// it is not emitting.
//
// Families may carry labeled series (LabeledCounter and friends):
// one # HELP/# TYPE header, many samples distinguished by label sets,
// the exposition shape multi-tenant deployments need — each tenant's
// counters live under one family as name{tenant="..."} samples.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBucketsUS is the shared microsecond bucket ladder for phase
// latency histograms: sub-microsecond searches land in the first
// bucket, a pathological full-second batch in the last.
var LatencyBucketsUS = []int64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// Labels attaches dimension values to a metric series.  A nil or
// empty map is the unlabeled series.  Label names must be valid
// Prometheus label identifiers; values are escaped on rendering.
type Labels map[string]string

// canon renders the label set canonically — keys sorted, values
// escaped, `k1="v1",k2="v2"` without braces — so equal label sets
// always resolve to the same series and exposition order is stable.
func (l Labels) canon() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically non-decreasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative deltas are ignored so the counter stays
// monotone (use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket int64 histogram.  Bounds are inclusive
// upper bounds in ascending order; one implicit overflow bucket
// catches everything beyond the last bound.  The observation count is
// derived from the bucket counts at snapshot time, so a snapshot
// taken concurrently with writers always satisfies
// count == sum(bucket counts).
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	sum     atomic.Int64
}

// Observe records one value.  Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	// Binary search for the first bound >= v; linear would do for ~20
	// buckets but the ladder length is caller-chosen.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// snapshot reads the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// metricKind discriminates registered families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one sample stream inside a family: a label set (the
// canonical rendering, "" for the unlabeled series) and exactly one
// of the three handles.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one registered metric name: metadata shared by every
// series plus the series themselves, keyed by canonical label string.
type family struct {
	name, help string
	kind       metricKind
	// bounds is the histogram bucket template; the first
	// registration's bounds win for every series of the family, so
	// labeled siblings are always comparable bucket-for-bucket.
	bounds []int64
	series map[string]*series
}

// sortedSeries returns the family's series with the unlabeled series
// first, then labeled series in canonical-label order.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// Registry holds named metrics and renders them as Prometheus text
// exposition or a JSON snapshot.  Registration is idempotent:
// re-registering a name of the same kind (and label set) returns the
// existing handle (the first registration's help text and buckets
// win), so every scheduling run over a shared registry accumulates
// into the same series.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register resolves or creates a family; a kind clash is a
// programming error and panics.
func (r *Registry) register(name, help string, kind metricKind) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, f.kind, kind))
	}
	return f
}

// seriesFor resolves or creates the series with the given canonical
// label string inside a family.
func (f *family) seriesFor(labels string) *series {
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{
				bounds:  f.bounds,
				buckets: make([]atomic.Int64, len(f.bounds)+1),
			}
		}
		f.series[labels] = s
	}
	return s
}

// Counter returns the named unlabeled counter, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help, nil)
}

// LabeledCounter returns the counter series with the given label set,
// registering family and series on first use.  All series of one
// family share its help text and type header in the exposition.
func (r *Registry) LabeledCounter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, help, kindCounter).seriesFor(labels.canon()).c
}

// Gauge returns the named unlabeled gauge, registering it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.LabeledGauge(name, help, nil)
}

// LabeledGauge returns the gauge series with the given label set,
// registering family and series on first use.
func (r *Registry) LabeledGauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, help, kindGauge).seriesFor(labels.canon()).g
}

// Histogram returns the named unlabeled histogram, registering it on
// first use with the given ascending bucket bounds (the overflow
// bucket is implicit).  An existing registration keeps its original
// bounds.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	return r.LabeledHistogram(name, help, bounds, nil)
}

// LabeledHistogram returns the histogram series with the given label
// set.  The family's bucket bounds are fixed by its first
// registration, so every labeled sibling shares the same ladder.
func (r *Registry) LabeledHistogram(name, help string, bounds []int64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindHistogram)
	if f.bounds == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %d", name, i))
			}
		}
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
		}
		f.bounds = append([]int64(nil), bounds...)
	}
	return f.seriesFor(labels.canon()).h
}

// Has reports whether a metric of any kind is registered under name.
func (r *Registry) Has(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.fams[name]
	return ok
}

// sorted returns the families in name order (stable exposition).
func (r *Registry) sorted() []*family {
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// HistogramSnapshot is a point-in-time histogram reading.  Counts are
// per-bucket (non-cumulative); the last entry is the overflow bucket.
// Count always equals the sum of Counts by construction.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank.  The
// overflow bucket has no upper bound, so ranks landing there return
// the last finite bound.  Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= rank {
			if i >= len(s.Bounds) {
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lower := float64(0)
			if i > 0 {
				lower = float64(s.Bounds[i-1])
			}
			upper := float64(s.Bounds[i])
			frac := (rank - seen) / float64(c)
			return lower + (upper-lower)*frac
		}
		seen = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Snapshot is a point-in-time reading of the whole registry,
// JSON-marshalable for /debug/vars and -metrics-out dumps.  Unlabeled
// series are keyed by bare family name; labeled series by
// `name{k="v",...}` with canonical label ordering.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// seriesKey is the snapshot map key for one series.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Snapshot reads every metric.  Counters in successive snapshots are
// monotone non-decreasing; each histogram satisfies count ==
// sum(bucket counts) even while writers are concurrent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.fams {
		for _, sr := range f.series {
			key := seriesKey(name, sr.labels)
			switch f.kind {
			case kindCounter:
				s.Counters[key] = sr.c.Value()
			case kindGauge:
				s.Gauges[key] = sr.g.Value()
			case kindHistogram:
				s.Histograms[key] = sr.h.snapshot()
			}
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// sampleName renders one sample's name with its label block.
func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// bucketName renders a histogram bucket sample name: the le label
// always comes last so `name_bucket{tenant="a",le="5"}` parses the
// same whether or not the series carries labels.
func bucketName(name, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", name, le)
	}
	return fmt.Sprintf("%s_bucket{%s,le=%q}", name, labels, le)
}

// WritePrometheus renders the registry as Prometheus text exposition
// (version 0.0.4): families in name order, each with # HELP and
// # TYPE lines, then its series — unlabeled first, labeled in
// canonical label order; histograms expose cumulative le buckets plus
// _sum and _count per series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := r.sorted()
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, sr := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name, sr.labels), sr.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name, sr.labels), sr.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				snap := sr.h.snapshot()
				var cum int64
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(f.name, sr.labels, fmt.Sprint(bound)), cum); err != nil {
						return err
					}
				}
				cum += snap.Counts[len(snap.Counts)-1]
				if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(f.name, sr.labels, "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n",
					sampleName(f.name+"_sum", sr.labels), snap.Sum,
					sampleName(f.name+"_count", sr.labels), cum); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
