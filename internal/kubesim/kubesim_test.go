package kubesim

import (
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func testCluster() *topology.Cluster {
	return topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		ContainerSubmitted: "submitted",
		ContainerBound:     "bound",
		ContainerEvicted:   "evicted",
		ContainerMigrated:  "migrated",
		ContainerFailed:    "failed",
		EventKind(42):      "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe(4)
	b.Publish(Event{Kind: ContainerSubmitted, ContainerID: "x"})
	b.Publish(Event{Kind: ContainerBound, ContainerID: "x", Machine: 1})
	e1, e2 := <-ch, <-ch
	if e1.Kind != ContainerSubmitted || e2.Kind != ContainerBound {
		t.Errorf("events out of order: %v %v", e1, e2)
	}
	if len(b.Log()) != 2 {
		t.Errorf("log length = %d", len(b.Log()))
	}
	b.Close()
	if _, open := <-ch; open {
		t.Error("channel should be closed")
	}
}

func TestBusDefaultBuffer(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe(0)
	b.Publish(Event{Kind: ContainerSubmitted})
	if e := <-ch; e.Kind != ContainerSubmitted {
		t.Error("event lost")
	}
}

func TestAdaptorBindEvict(t *testing.T) {
	bus := NewBus()
	a := NewAdaptor(testCluster(), bus)
	c := &workload.Container{ID: "a/0", App: "a", Demand: resource.Cores(4, 4096)}
	if err := a.Bind(c, 2); err != nil {
		t.Fatal(err)
	}
	if m, ok := a.Binding("a/0"); !ok || m != 2 {
		t.Errorf("Binding = %v, %v", m, ok)
	}
	if !a.Cluster().Machine(2).Hosts("a/0") {
		t.Error("machine should host the container")
	}
	if err := a.Bind(c, 2); err == nil {
		t.Error("double bind should fail")
	}
	if err := a.Evict(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Binding("a/0"); ok {
		t.Error("binding should be cleared")
	}
	if err := a.Evict(c); err == nil {
		t.Error("evicting unbound should fail")
	}
	log := bus.Log()
	if len(log) != 2 || log[0].Kind != ContainerBound || log[1].Kind != ContainerEvicted {
		t.Errorf("log = %v", log)
	}
}

func TestAdaptorBindErrors(t *testing.T) {
	a := NewAdaptor(testCluster(), NewBus())
	c := &workload.Container{ID: "a/0", App: "a", Demand: resource.Cores(64, 4096)}
	if err := a.Bind(c, 99); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := a.Bind(c, 0); err == nil {
		t.Error("oversized container should fail")
	}
}

func TestAdaptorMigrate(t *testing.T) {
	bus := NewBus()
	a := NewAdaptor(testCluster(), bus)
	c := &workload.Container{ID: "a/0", App: "a", Demand: resource.Cores(4, 4096)}
	if err := a.Bind(c, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(c, 3); err != nil {
		t.Fatal(err)
	}
	if m, _ := a.Binding("a/0"); m != 3 {
		t.Errorf("binding after migrate = %d", m)
	}
	if a.Cluster().Machine(0).Hosts("a/0") {
		t.Error("source machine should no longer host")
	}
	if !a.Cluster().Machine(3).Hosts("a/0") {
		t.Error("destination should host")
	}
	last := bus.Log()[len(bus.Log())-1]
	if last.Kind != ContainerMigrated || last.From != 0 || last.Machine != 3 {
		t.Errorf("migrate event = %+v", last)
	}
	if err := a.Migrate(c, 99); err == nil {
		t.Error("unknown destination should fail")
	}
	c2 := &workload.Container{ID: "b/0", App: "b", Demand: resource.Cores(1, 1)}
	if err := a.Migrate(c2, 1); err == nil {
		t.Error("migrating unbound should fail")
	}
}

func TestAdaptorMigrateRollback(t *testing.T) {
	a := NewAdaptor(testCluster(), NewBus())
	big := &workload.Container{ID: "big/0", App: "big", Demand: resource.Cores(20, 4096)}
	blockTarget := &workload.Container{ID: "block/0", App: "block", Demand: resource.Cores(20, 4096)}
	if err := a.Bind(big, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(blockTarget, 1); err != nil {
		t.Fatal(err)
	}
	// Destination full: migrate must fail and roll back.
	if err := a.Migrate(big, 1); err == nil {
		t.Fatal("migrate into full machine should fail")
	}
	if !a.Cluster().Machine(0).Hosts("big/0") {
		t.Error("rollback should restore the container at the source")
	}
	if m, _ := a.Binding("big/0"); m != 0 {
		t.Errorf("binding after failed migrate = %d", m)
	}
}

func TestResolverEndToEnd(t *testing.T) {
	bus := NewBus()
	cl := testCluster()
	a := NewAdaptor(cl, bus)
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 4096), Replicas: 3, AntiAffinitySelf: true},
		{ID: "whale", Demand: resource.Cores(64, 1024), Replicas: 1},
	})
	r := NewResolver(core.NewDefault())
	res, err := r.Resolve(w, a, workload.OrderSubmission)
	if err != nil {
		t.Fatal(err)
	}
	// Every deployed container is actually bound on the adaptor's
	// cluster.
	for id, m := range res.Assignment {
		bound, ok := a.Binding(id)
		if !ok || bound != m {
			t.Errorf("container %s: binding %v/%v, want %v", id, bound, ok, m)
		}
		if !cl.Machine(m).Hosts(id) {
			t.Errorf("machine %d does not host %s", m, id)
		}
	}
	// Event log contains submissions, binds and the whale's failure.
	var submitted, bound, failed int
	for _, e := range bus.Log() {
		switch e.Kind {
		case ContainerSubmitted:
			submitted++
		case ContainerBound:
			bound++
		case ContainerFailed:
			failed++
		}
	}
	if submitted != 4 {
		t.Errorf("submitted events = %d", submitted)
	}
	if bound != 3 {
		t.Errorf("bound events = %d", bound)
	}
	if failed != 1 {
		t.Errorf("failed events = %d", failed)
	}
}

func TestCloneShapePreservesLayout(t *testing.T) {
	cl := testCluster()
	if err := cl.Machine(0).Allocate("x", resource.Cores(1, 1)); err != nil {
		t.Fatal(err)
	}
	shadow := cloneShape(cl)
	if shadow.Size() != cl.Size() {
		t.Errorf("size %d != %d", shadow.Size(), cl.Size())
	}
	if shadow.UsedMachines() != 0 {
		t.Error("shadow must be empty")
	}
	if len(shadow.Racks()) != len(cl.Racks()) {
		t.Errorf("racks %d != %d", len(shadow.Racks()), len(cl.Racks()))
	}
	if shadow.Machine(0).Capacity() != cl.Machine(0).Capacity() {
		t.Error("capacity mismatch")
	}
}
