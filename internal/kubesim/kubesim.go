// Package kubesim is the event-driven cluster substrate standing in
// for the paper's Kubernetes 1.11 co-design (§IV.C, Fig. 6).  The
// architecture mirrors the three components the paper names:
//
//   - EHC (events handling centre): an event bus receiving lifecycle
//     and resource changes and forwarding them to subscribers;
//   - MA (model adaptor): decouples cluster objects from scheduling
//     by exposing watch and bind APIs over the topology model;
//   - RE (resolver): plugs a scheduler in to map containers to
//     resources.
//
// The paper's evaluation "merely stubs out RPCs and task execution";
// kubesim does the same — events are delivered in-process, but the
// watch/bind contract is identical to what a live integration needs.
package kubesim

import (
	"fmt"
	"sync"

	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// EventKind enumerates lifecycle events.
type EventKind int

const (
	// ContainerSubmitted: a container entered the scheduling queue.
	ContainerSubmitted EventKind = iota
	// ContainerBound: a container was placed on a machine.
	ContainerBound
	// ContainerEvicted: a container was removed from a machine
	// (preemption or failure).
	ContainerEvicted
	// ContainerMigrated: a container moved between machines.
	ContainerMigrated
	// ContainerFailed: the scheduler gave up on a container.
	ContainerFailed
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case ContainerSubmitted:
		return "submitted"
	case ContainerBound:
		return "bound"
	case ContainerEvicted:
		return "evicted"
	case ContainerMigrated:
		return "migrated"
	case ContainerFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Event is one lifecycle notification.
type Event struct {
	Kind        EventKind
	ContainerID string
	// Machine is the binding target (Bound), the source (Evicted), or
	// the destination (Migrated).
	Machine topology.MachineID
	// From is the source machine for migrations.
	From topology.MachineID
}

// Bus is the events handling centre: subscribers receive every event
// published after they subscribe, in publish order.
type Bus struct {
	mu   sync.Mutex
	subs []chan Event
	log  []Event
}

// NewBus builds an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe returns a channel receiving future events.  The channel
// is buffered; a subscriber that falls behind by more than the buffer
// blocks publishers (in-process semantics — acceptable for the
// simulator, as the paper stubs RPCs too).
func (b *Bus) Subscribe(buffer int) <-chan Event {
	if buffer <= 0 {
		buffer = 1024
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	b.subs = append(b.subs, ch)
	b.mu.Unlock()
	return ch
}

// Publish delivers the event to all subscribers and appends it to the
// bus log.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	b.log = append(b.log, e)
	subs := b.subs
	b.mu.Unlock()
	for _, ch := range subs {
		ch <- e
	}
}

// Close closes all subscriber channels.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// Log returns a copy of all published events.
func (b *Bus) Log() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.log))
	copy(out, b.log)
	return out
}

// Adaptor is the model adaptor: the watch/bind surface over the
// cluster that a resolver drives.
type Adaptor struct {
	cluster *topology.Cluster
	bus     *Bus
	mu      sync.Mutex
	binding map[string]topology.MachineID
}

// NewAdaptor wraps a cluster with an event-publishing bind API.
func NewAdaptor(cluster *topology.Cluster, bus *Bus) *Adaptor {
	return &Adaptor{
		cluster: cluster,
		bus:     bus,
		binding: make(map[string]topology.MachineID),
	}
}

// Cluster exposes the underlying topology (read-side of the watch
// API).  The pointer is set once at construction and never reassigned,
// so reading it without the mutex is safe.
//
//aladdin:lock-ok immutable after construction
func (a *Adaptor) Cluster() *topology.Cluster { return a.cluster }

// Binding returns the machine a container is bound to, if any.
func (a *Adaptor) Binding(containerID string) (topology.MachineID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.binding[containerID]
	return m, ok
}

// Bind places a container and publishes ContainerBound.
func (a *Adaptor) Bind(c *workload.Container, m topology.MachineID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	machine := a.cluster.Machine(m)
	if machine == nil {
		return fmt.Errorf("kubesim: bind %s: unknown machine %d", c.ID, m)
	}
	if err := machine.Allocate(c.ID, c.Demand); err != nil {
		return fmt.Errorf("kubesim: bind: %w", err)
	}
	a.binding[c.ID] = m
	a.bus.Publish(Event{Kind: ContainerBound, ContainerID: c.ID, Machine: m})
	return nil
}

// Evict removes a container and publishes ContainerEvicted.
func (a *Adaptor) Evict(c *workload.Container) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.binding[c.ID]
	if !ok {
		return fmt.Errorf("kubesim: evict %s: not bound", c.ID)
	}
	if _, err := a.cluster.Machine(m).Release(c.ID); err != nil {
		return fmt.Errorf("kubesim: evict: %w", err)
	}
	delete(a.binding, c.ID)
	a.bus.Publish(Event{Kind: ContainerEvicted, ContainerID: c.ID, Machine: m})
	return nil
}

// Migrate moves a bound container to another machine atomically
// (release + allocate) and publishes ContainerMigrated.
func (a *Adaptor) Migrate(c *workload.Container, to topology.MachineID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	from, ok := a.binding[c.ID]
	if !ok {
		return fmt.Errorf("kubesim: migrate %s: not bound", c.ID)
	}
	dest := a.cluster.Machine(to)
	if dest == nil {
		return fmt.Errorf("kubesim: migrate %s: unknown machine %d", c.ID, to)
	}
	if _, err := a.cluster.Machine(from).Release(c.ID); err != nil {
		return fmt.Errorf("kubesim: migrate release: %w", err)
	}
	if err := dest.Allocate(c.ID, c.Demand); err != nil {
		// Roll the container back where it was.
		if rerr := a.cluster.Machine(from).Allocate(c.ID, c.Demand); rerr != nil {
			return fmt.Errorf("kubesim: migrate rollback failed: %v (after %w)", rerr, err)
		}
		return fmt.Errorf("kubesim: migrate: %w", err)
	}
	a.binding[c.ID] = to
	a.bus.Publish(Event{Kind: ContainerMigrated, ContainerID: c.ID, Machine: to, From: from})
	return nil
}

// Resolver maps containers to resources through a scheduler — the RE
// component.  It runs the scheduler on a private shadow cluster, then
// replays the decisions through the adaptor's bind API so every
// placement becomes a watchable event stream.
type Resolver struct {
	scheduler sched.Scheduler
}

// NewResolver wraps a scheduler.
func NewResolver(s sched.Scheduler) *Resolver { return &Resolver{scheduler: s} }

// Resolve schedules the workload and replays the outcome through the
// adaptor.  The adaptor's cluster must be empty (fresh or Reset).
func (r *Resolver) Resolve(w *workload.Workload, a *Adaptor, order workload.ArrivalOrder) (*sched.Result, error) {
	arrivals := w.Arrange(order)
	for _, c := range arrivals {
		a.bus.Publish(Event{Kind: ContainerSubmitted, ContainerID: c.ID})
	}
	// Shadow cluster with identical shape and identical pre-existing
	// allocations (residents the scheduler must plan around).
	shadow := cloneShape(a.cluster)
	for _, m := range a.cluster.Machines() {
		for id, demand := range m.Allocations() {
			if err := shadow.Machine(m.ID).Allocate(id, demand); err != nil {
				return nil, fmt.Errorf("kubesim: shadow clone: %w", err)
			}
		}
	}
	res, err := r.scheduler.Schedule(w, shadow, arrivals)
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*workload.Container, w.NumContainers())
	for _, c := range w.Containers() {
		byID[c.ID] = c
	}
	for _, c := range arrivals {
		if m, ok := res.Assignment[c.ID]; ok {
			if err := a.Bind(byID[c.ID], m); err != nil {
				return nil, err
			}
		}
	}
	for _, id := range res.Undeployed {
		a.bus.Publish(Event{Kind: ContainerFailed, ContainerID: id})
	}
	return res, nil
}

// cloneShape builds an empty cluster with the same machine layout.
func cloneShape(c *topology.Cluster) *topology.Cluster {
	if c.Size() == 0 {
		return topology.New(topology.Config{})
	}
	m0 := c.Machine(0)
	perRack := len(c.Rack(m0.Rack).Machines)
	perSub := len(c.SubCluster(m0.Cluster).Racks)
	return topology.New(topology.Config{
		Machines:        c.Size(),
		MachinesPerRack: perRack,
		RacksPerCluster: perSub,
		Capacity:        m0.Capacity(),
	})
}
