package loadtest

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/server"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// buildServer assembles a server over a flat single-app universe: n
// one-core containers on enough 32-core machines to hold them all,
// with or without request coalescing.
func buildServer(tb testing.TB, n int, coalesced bool) (*server.Server, []string) {
	tb.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "svc", Demand: resource.Cores(1, 2048), Replicas: n},
	})
	cl := topology.New(topology.Config{
		Machines: n / 16, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	var opts []server.Option
	if coalesced {
		opts = append(opts, server.WithCoalescing(server.CoalesceConfig{
			Window: time.Millisecond, MaxBatch: 32, MaxQueue: 4096,
		}))
	}
	s := server.New(sess, w, cl, opts...)
	tb.Cleanup(s.Drain)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("svc/%d", i)
	}
	return s, ids
}

// TestHarnessBasics sanity-checks the harness itself on a small
// uncoalesced server: every request lands, statuses are 200, and the
// latency histogram carries every observation.
func TestHarnessBasics(t *testing.T) {
	s, ids := buildServer(t, 64, false)
	res := Run(Config{Clients: 128, IDs: ids}, HandlerTarget{Handler: s})
	if res.Requests != 64 || res.StatusCounts[200] != 64 {
		t.Fatalf("result = %+v", res)
	}
	if !res.OK(200) {
		t.Fatalf("unexpected statuses: %v (errors %d)", res.StatusCounts, res.Errors)
	}
	if res.Latency.Count != 64 {
		t.Fatalf("latency count = %d, want 64", res.Latency.Count)
	}
	if res.Throughput <= 0 || res.P99US < res.P50US {
		t.Fatalf("throughput %v p50 %v p99 %v", res.Throughput, res.P50US, res.P99US)
	}
}

// TestHTTPTarget exercises the network-backed target against a real
// listener.
func TestHTTPTarget(t *testing.T) {
	s, ids := buildServer(t, 32, true)
	srv := httptest.NewServer(s)
	defer srv.Close()
	res := Run(Config{Clients: 8, IDs: ids}, HTTPTarget{Base: srv.URL})
	if !res.OK(200) {
		t.Fatalf("statuses = %v, errors = %d", res.StatusCounts, res.Errors)
	}
}

// TestLoadSmoke is the CI load-smoke gate: a small fixed load against
// a coalesced server.  Any response outside {200, 429}, any transport
// error, or a p99 above a deliberately generous tripwire fails the
// job; it exists to catch gross regressions (deadlocks, lost replies,
// hundred-millisecond stalls), not to benchmark.
func TestLoadSmoke(t *testing.T) {
	s, ids := buildServer(t, 512, true)
	res := Run(Config{Clients: 16, IDs: ids}, HandlerTarget{Handler: s})
	if !res.OK(200, 429) {
		t.Fatalf("statuses = %v, errors = %d; want only 200/429", res.StatusCounts, res.Errors)
	}
	const tripwireUS = 500_000 // 0.5s — orders of magnitude above normal
	if res.P99US > tripwireUS {
		t.Fatalf("p99 = %.0fus, tripwire %dus", res.P99US, tripwireUS)
	}
	t.Logf("load-smoke: %d req, %.0f req/s, p50 %.0fus, p99 %.0fus, statuses %v",
		res.Requests, res.Throughput, res.P50US, res.P99US, res.StatusCounts)
}

// TestCoalescedThroughput2x is the tentpole's headline claim: 32
// concurrent clients each placing single containers push at least 2x
// the throughput through the coalescing batcher that they get from
// the direct per-request path.  The mechanism: the direct path pays
// one full assignment-view rebuild (O(placed)) plus one solver entry
// per request; the batcher pays both once per merged batch.
func TestCoalescedThroughput2x(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short")
	}
	const n = 2048
	const clients = 32

	direct, ids := buildServer(t, n, false)
	resDirect := Run(Config{Clients: clients, IDs: ids}, HandlerTarget{Handler: direct})
	if !resDirect.OK(200) {
		t.Fatalf("direct statuses = %v, errors = %d", resDirect.StatusCounts, resDirect.Errors)
	}

	coalesced, ids := buildServer(t, n, true)
	resCo := Run(Config{Clients: clients, IDs: ids}, HandlerTarget{Handler: coalesced})
	if !resCo.OK(200) {
		t.Fatalf("coalesced statuses = %v, errors = %d", resCo.StatusCounts, resCo.Errors)
	}

	speedup := resCo.Throughput / resDirect.Throughput
	t.Logf("direct:    %.0f req/s  p50 %.0fus  p99 %.0fus", resDirect.Throughput, resDirect.P50US, resDirect.P99US)
	t.Logf("coalesced: %.0f req/s  p50 %.0fus  p99 %.0fus", resCo.Throughput, resCo.P50US, resCo.P99US)
	t.Logf("speedup:   %.2fx", speedup)
	if speedup < 2 {
		t.Errorf("coalesced throughput %.0f req/s is only %.2fx the direct path's %.0f req/s, want >= 2x",
			resCo.Throughput, speedup, resDirect.Throughput)
	}
}
