// Package loadtest is a small concurrent load harness for the aladdin
// scheduler server: many client goroutines issue single-container
// POST /place requests against a Target (an in-process http.Handler
// or a live HTTP endpoint), and per-request latency lands in an obs
// histogram so p50/p99 come out of the same quantile machinery the
// production metrics use.  It is shared by the server throughput
// tests, the experiments sweep, and the CI load-smoke job.
package loadtest

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aladdin/internal/obs"
)

// Target is one way of delivering a request to the server.
type Target interface {
	// Do issues the request and returns the HTTP status code.
	Do(method, path, body string) (int, error)
}

// HandlerTarget drives an http.Handler in process through httptest —
// no sockets, so the harness measures the server, not the kernel.
type HandlerTarget struct {
	Handler http.Handler
}

func (h HandlerTarget) Do(method, path, body string) (int, error) {
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	h.Handler.ServeHTTP(rec, req)
	return rec.Code, nil
}

// HTTPTarget drives a live server over the network.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (h HTTPTarget) Do(method, path, body string) (int, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, h.Base+path, rdr)
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Config shapes one load run.
type Config struct {
	// Clients is the number of concurrent client goroutines; 0 means 1.
	Clients int
	// IDs are the container IDs to place, one single-container request
	// each, work-stolen across clients.
	IDs []string
	// Prefix is the tenant route prefix ("" for the default tenant,
	// "/t/blue" for a named one).
	Prefix string
}

// Result summarises one load run.
type Result struct {
	// Requests is the number of requests issued (== len(cfg.IDs)).
	Requests int
	// Duration is the wall-clock span from first request to last
	// response.
	Duration time.Duration
	// Throughput is completed requests per second.
	Throughput float64
	// StatusCounts histograms the HTTP status codes received.
	StatusCounts map[int]int
	// Errors counts transport-level failures (HTTPTarget only).
	Errors int
	// P50US and P99US are per-request latency quantiles in
	// microseconds, estimated from the obs histogram the harness
	// records into.
	P50US float64
	P99US float64
	// Latency is the raw histogram snapshot for callers that want
	// other quantiles.
	Latency obs.HistogramSnapshot
}

// OK reports whether every request came back with the given statuses
// (transport errors always fail).
func (r *Result) OK(allowed ...int) bool {
	if r.Errors > 0 {
		return false
	}
	ok := make(map[int]bool, len(allowed))
	for _, code := range allowed {
		ok[code] = true
	}
	for code, n := range r.StatusCounts {
		if n > 0 && !ok[code] {
			return false
		}
	}
	return true
}

// latencyFamily is the harness's private histogram family name.
const latencyFamily = "loadtest_request_duration_us"

// Run fires len(cfg.IDs) single-container place requests at the
// target from cfg.Clients goroutines and reports throughput and
// latency quantiles.
func Run(cfg Config, target Target) *Result {
	clients := cfg.Clients
	if clients <= 0 {
		clients = 1
	}
	if clients > len(cfg.IDs) {
		clients = len(cfg.IDs)
	}
	reg := obs.NewRegistry()
	lat := reg.Histogram(latencyFamily, "per-request wall latency, microseconds", obs.LatencyBucketsUS)

	var (
		next   atomic.Int64
		mu     sync.Mutex
		counts = make(map[int]int)
		errs   int
		wg     sync.WaitGroup
	)
	path := cfg.Prefix + "/place"
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfg.IDs) {
					return
				}
				body := fmt.Sprintf(`{"containers":[%q]}`, cfg.IDs[i])
				t0 := time.Now()
				code, err := target.Do(http.MethodPost, path, body)
				lat.Observe(time.Since(t0).Microseconds())
				mu.Lock()
				if err != nil {
					errs++
				} else {
					counts[code]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)

	snap := reg.Snapshot().Histograms[latencyFamily]
	res := &Result{
		Requests:     len(cfg.IDs),
		Duration:     dur,
		StatusCounts: counts,
		Errors:       errs,
		P50US:        snap.Quantile(0.50),
		P99US:        snap.Quantile(0.99),
		Latency:      snap,
	}
	if dur > 0 {
		res.Throughput = float64(res.Requests) / dur.Seconds()
	}
	return res
}
