module aladdin

go 1.22
