// Package aladdin_test holds the repository-level benchmark harness:
// one benchmark per table/figure of the paper (regenerating the same
// series at a reduced scale suitable for `go test -bench`) plus
// micro-benchmarks of the core machinery.  Run everything with:
//
//	go test -bench=. -benchmem
//
// The paper-scale runs live behind `cmd/experiments -scale full`.
package aladdin_test

import (
	"io"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/experiments"
	"aladdin/internal/firmament"
	"aladdin/internal/flow"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// benchScale is small enough to iterate under `go test -bench` but
// keeps the trace's constraint structure intact.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:         "bench",
		TraceFactor:  200,
		Machines:     192,
		MachineSweep: []int{64, 192},
		Seed:         42,
	}
}

func benchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	return trace.MustGenerate(trace.Scaled(42, 200))
}

func runSched(b *testing.B, s sched.Scheduler, w *workload.Workload, machines int, order workload.ArrivalOrder) sim.Metrics {
	b.Helper()
	m, err := sim.Run(sim.Config{Scheduler: s, Workload: w, Machines: machines, Order: order})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFig8WorkloadGen regenerates the Fig. 8 workload-features
// data (trace synthesis + statistics + CDF).
func BenchmarkFig8WorkloadGen(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(s)
		if r.Stats.Apps == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkFig9PlacementQuality regenerates one Fig. 9 panel: the six
// schedulers of panel (d) on the shared trace.
func BenchmarkFig9PlacementQuality(b *testing.B) {
	w := benchWorkload(b)
	schedulers := []sched.Scheduler{
		gokube.NewDefault(),
		firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: 8}),
		firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 8}),
		firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: 8}),
		medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 0.5, C: 0.5}}),
		core.NewDefault(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range schedulers {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	}
}

// BenchmarkFig10MachinesUsed regenerates the Fig. 10 capacity search
// for Aladdin on one arrival order.
func BenchmarkFig10MachinesUsed(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig11Utilization reads the utilisation ranges from a
// single Aladdin run (Fig. 11 is derived from the Fig. 10 runs; this
// isolates the per-run measurement cost).
func BenchmarkFig11Utilization(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		m := runSched(b, core.NewDefault(), w, 192, workload.OrderSubmission)
		if m.Utilization.Max == 0 {
			b.Fatal("empty utilisation")
		}
	}
}

// BenchmarkFig12Latency regenerates the placement-latency curves
// (the three Aladdin policies and the three baselines, two cluster
// sizes).
func BenchmarkFig12Latency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig13aOverhead regenerates the Aladdin overhead-scaling
// series across the four arrival orders.
func BenchmarkFig13aOverhead(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig13bMigrations isolates the migration-heavy case of
// Fig. 13(b): CSA order (least-constrained containers first), which
// forces the most migrations.
func BenchmarkFig13bMigrations(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		runSched(b, core.NewDefault(), w, 192, workload.OrderCSA)
	}
}

// BenchmarkAblationILDL compares the plain Aladdin search with the
// IL+DL-optimised one (the §IV.A claim: the optimisations halve
// placement latency).
func BenchmarkAblationILDL(b *testing.B) {
	w := benchWorkload(b)
	plain := core.DefaultOptions()
	plain.IsomorphismLimiting = false
	plain.DepthLimiting = false
	b.Run("plain", func(b *testing.B) {
		s := core.New(plain)
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	})
	b.Run("IL", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.DepthLimiting = false
		s := core.New(opts)
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	})
	b.Run("IL+DL", func(b *testing.B) {
		s := core.NewDefault()
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	})
}

// BenchmarkAblationWeights compares the weighted-flow preemption rule
// against the raw-flow ablation (§III.B / Fig. 3a).
func BenchmarkAblationWeights(b *testing.B) {
	w := benchWorkload(b)
	b.Run("weighted", func(b *testing.B) {
		s := core.NewDefault()
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderCLP)
		}
	})
	b.Run("raw", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.DisableWeights = true
		s := core.New(opts)
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderCLP)
		}
	})
}

// BenchmarkAladdinPerContainer measures the core scheduler's
// per-container placement cost (Equation 11's latency) at three
// cluster scales — small (384 machines, ~2k containers), medium
// (1,024 machines, ~2k containers) and large (10,000 machines, ~100k
// containers, the paper's production scale) — plus each scale with
// the indexed search swapped for the retained naive scan
// (Options.NaiveSearch) as the in-binary A/B baseline.  The same
// tiers drive `make bench` via cmd/aladdin-sim, which appends them as
// JSON rows to BENCH_search.json.
func BenchmarkAladdinPerContainer(b *testing.B) {
	workloads := map[int]*workload.Workload{}
	scaled := func(factor int) *workload.Workload {
		if w := workloads[factor]; w != nil {
			return w
		}
		w := trace.MustGenerate(trace.Scaled(42, factor))
		workloads[factor] = w
		return w
	}
	for _, sc := range []struct {
		name     string
		machines int
		factor   int
		naive    bool
	}{
		{"small", 384, 50, false},
		{"medium", 1024, 50, false},
		{"medium-naive", 1024, 50, true},
		{"large", 10000, 1, false},
		{"large-naive", 10000, 1, true},
	} {
		b.Run(sc.name, func(b *testing.B) {
			w := scaled(sc.factor)
			opts := core.DefaultOptions()
			opts.NaiveSearch = sc.naive
			s := core.New(opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := runSched(b, s, w, sc.machines, workload.OrderSubmission)
				b.ReportMetric(float64(m.Latency.Nanoseconds()), "ns/container")
			}
		})
	}
}

// BenchmarkMaxFlow measures the Edmonds-Karp substrate on a layered
// network.
func BenchmarkMaxFlow(b *testing.B) {
	build := func() (*flow.Graph, flow.NodeID, flow.NodeID) {
		const layers, width = 8, 32
		n := 2 + layers*width
		g := flow.NewGraph(n)
		s, t := flow.NodeID(0), flow.NodeID(n-1)
		node := func(l, w int) flow.NodeID { return flow.NodeID(1 + l*width + w) }
		for w := 0; w < width; w++ {
			g.MustAddArc(s, node(0, w), 10, 0)
			g.MustAddArc(node(layers-1, w), t, 10, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for a := 0; a < width; a++ {
				g.MustAddArc(node(l, a), node(l+1, a), 10, 1)
				g.MustAddArc(node(l, a), node(l+1, (a+1)%width), 5, 2)
			}
		}
		return g, s, t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, s, t := build()
		if _, err := flow.MaxFlow(g, s, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverAblation compares the two max-flow solvers on the
// same layered networks — the solver-choice ablation (Edmonds-Karp is
// what SPFA-family schedulers use; Dinic is the asymptotically
// stronger alternative).
func BenchmarkSolverAblation(b *testing.B) {
	build := func() (*flow.Graph, flow.NodeID, flow.NodeID) {
		const layers, width = 6, 48
		n := 2 + layers*width
		g := flow.NewGraph(n)
		s, t := flow.NodeID(0), flow.NodeID(n-1)
		node := func(l, w int) flow.NodeID { return flow.NodeID(1 + l*width + w) }
		for w := 0; w < width; w++ {
			g.MustAddArc(s, node(0, w), 7, 0)
			g.MustAddArc(node(layers-1, w), t, 7, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for a := 0; a < width; a++ {
				g.MustAddArc(node(l, a), node(l+1, a), 7, 0)
				g.MustAddArc(node(l, a), node(l+1, (a+3)%width), 4, 0)
			}
		}
		return g, s, t
	}
	b.Run("edmonds-karp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := build()
			if _, err := flow.MaxFlow(g, s, t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dinic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := build()
			if _, err := flow.Dinic(g, s, t); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMinCostMaxFlow measures the SPFA-based min-cost solver the
// Firmament baseline runs per chunk.
func BenchmarkMinCostMaxFlow(b *testing.B) {
	build := func() (*flow.Graph, flow.NodeID, flow.NodeID) {
		const tasks, machines = 128, 64
		g := flow.NewGraph(2 + tasks + machines)
		s, t := flow.NodeID(0), flow.NodeID(1)
		for ti := 0; ti < tasks; ti++ {
			tn := flow.NodeID(2 + ti)
			g.MustAddArc(s, tn, 1, 0)
			for k := 0; k < 4; k++ {
				mn := flow.NodeID(2 + tasks + (ti*7+k*13)%machines)
				g.MustAddArc(tn, mn, 1, int64((ti+k)%10))
			}
		}
		for mi := 0; mi < machines; mi++ {
			g.MustAddArc(flow.NodeID(2+tasks+mi), t, 4, 0)
		}
		return g, s, t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, s, t := build()
		if _, _, err := flow.MinCostMaxFlow(g, s, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCMFSolvers compares the SPFA and Dijkstra-with-potentials
// min-cost solvers on the Firmament chunk shape.
func BenchmarkMCMFSolvers(b *testing.B) {
	build := func() (*flow.Graph, flow.NodeID, flow.NodeID) {
		const tasks, machines = 256, 96
		g := flow.NewGraph(2 + tasks + machines)
		s, t := flow.NodeID(0), flow.NodeID(1)
		for ti := 0; ti < tasks; ti++ {
			tn := flow.NodeID(2 + ti)
			g.MustAddArc(s, tn, 1, 0)
			for k := 0; k < 4; k++ {
				mn := flow.NodeID(2 + tasks + (ti*11+k*17)%machines)
				g.MustAddArc(tn, mn, 1, int64((ti*3+k)%50))
			}
		}
		for mi := 0; mi < machines; mi++ {
			g.MustAddArc(flow.NodeID(2+tasks+mi), t, 4, 0)
		}
		return g, s, t
	}
	b.Run("spfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := build()
			if _, _, err := flow.MinCostMaxFlow(g, s, t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := build()
			if _, _, err := flow.MinCostMaxFlowDijkstra(g, s, t); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFirmamentSolvers compares the end-to-end Firmament run
// under both solvers.
func BenchmarkFirmamentSolvers(b *testing.B) {
	w := benchWorkload(b)
	b.Run("spfa", func(b *testing.B) {
		s := firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 4})
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	})
	b.Run("dijkstra", func(b *testing.B) {
		s := firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 4, UseDijkstraSolver: true})
		for i := 0; i < b.N; i++ {
			runSched(b, s, w, 192, workload.OrderSubmission)
		}
	})
}

// BenchmarkTraceGenerate measures synthetic trace generation at the
// paper's 1:10 scale.
func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := trace.MustGenerate(trace.Scaled(int64(i), 10))
		if w.NumContainers() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceRoundTrip measures trace serialisation.
func BenchmarkTraceRoundTrip(b *testing.B) {
	w := trace.MustGenerate(trace.Scaled(42, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			err := trace.Write(pw, w)
			pw.Close()
			done <- err
		}()
		if _, err := trace.Read(pr); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
