GO ?= go

.PHONY: build test verify lint fuzz bench bench-smoke load-smoke rebalance-soak cover allocguard clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: build, vet, and the complete test
# suite under the race detector (the parallel sub-cluster sweep makes
# -race load-bearing, not optional).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# lint runs the project's static-analysis gate: gofmt, go vet, the
# seven aladdin-vet invariant analyzers (determinism, errflow,
# hotalloc, intcap, lockcheck, lockorder, ordinalflow), and the
# suppression audit that keeps the //aladdin: marker inventory honest
# (every marker known, reasoned, and still load-bearing).  staticcheck
# and govulncheck run too when installed — locally they are optional
# (no network to fetch them), in CI they are installed and mandatory.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/aladdin-vet ./...
	$(GO) run ./cmd/aladdin-vet -audit-suppressions ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

# cover runs the suite with coverage and prints the per-package and
# total summary.
cover:
	$(GO) test -cover -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# allocguard verifies the allocation-free fast paths stay that way:
# the disabled-observability seams (a nil-sink Tracer.Emit and
# nil-registry counter must cost 0 allocs/op, so uninstrumented
# schedulers pay nothing) and the scheduler core itself (a warm
# Session.Place/Remove cycle must run entirely out of session scratch
# — see TestSessionPlaceZeroAlloc for the same contract as a test).
allocguard:
	@out="$$($(GO) test ./internal/obs/ -run='^$$' -bench='BenchmarkTracerDisabled|BenchmarkCounterDisabled' -benchmem -benchtime=1000x)"; \
	echo "$$out"; \
	if echo "$$out" | grep -E '^Benchmark' | awk '{ if ($$(NF-1) != 0) exit 1 }'; then \
		echo "allocguard: disabled obs paths are allocation-free"; \
	else \
		echo "allocguard: nil-sink path allocates!" >&2; exit 1; \
	fi
	@out="$$($(GO) test ./internal/core/ -run='^$$' -bench='BenchmarkSessionPlace' -benchmem -benchtime=2000x)"; \
	echo "$$out"; \
	if echo "$$out" | grep -E '^Benchmark' | awk '{ if ($$(NF-1) != 0) exit 1 }'; then \
		echo "allocguard: Session.Place hot path is allocation-free"; \
	else \
		echo "allocguard: Session.Place allocates!" >&2; exit 1; \
	fi
	$(GO) test ./internal/core/ -run='^TestSessionPlaceZeroAlloc$$' -count=1

# fuzz gives each invariant fuzz target a short budget beyond its
# committed seed corpus; FUZZTIME=5m for a serious soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzPlace -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzFailRecover -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzIndexNaiveEquivalence -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/checkpoint/ -run='^$$' -fuzz=FuzzCheckpointRead -fuzztime=$(FUZZTIME)

# bench records the per-container placement cost (ns/container) at the
# small (384), medium (1,024) and large (10,000 machines, ~100k
# containers) cluster scales as JSON lines in BENCH_search.json, plus
# the medium and large scales with the naive scan as A/B baselines and
# the large scale through the sharded core at 1/2/4/8 shards (the
# scaling curve of DESIGN.md §13; sharded rows report the critical
# path, with host wall-clock in wall_ns).  BENCHREPS repeats each
# deterministic run and keeps the fastest, stripping cold-process
# noise from the recorded figures.
BENCHREPS ?= 5
bench:
	rm -f BENCH_search.json
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 384 -factor 50 -bench-out BENCH_search.json -bench-label small
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 1024 -factor 50 -bench-out BENCH_search.json -bench-label medium
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 1024 -factor 50 -naive-search -bench-out BENCH_search.json -bench-label medium-naive
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -bench-out BENCH_search.json -bench-label large
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -naive-search -bench-out BENCH_search.json -bench-label large-naive
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -shards 1 -bench-out BENCH_search.json -bench-label large-shard1
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -shards 2 -bench-out BENCH_search.json -bench-label large-shard2
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -shards 4 -bench-out BENCH_search.json -bench-label large-shard4
	$(GO) run ./cmd/aladdin-sim -reps $(BENCHREPS) -machines 10000 -factor 1 -shards 8 -bench-out BENCH_search.json -bench-label large-shard8
	@cat BENCH_search.json

# bench-smoke is the CI regression tripwire: re-measure the small
# preset and the sharded 10k-machine preset, and fail if ns/container
# regressed against the committed BENCH_search.json rows.  Small keeps
# the job fast and gets a 25% margin at high repetition; the sharded
# row measures the critical path (serial sections plus slowest shard),
# which is noisier on shared runners, so it runs fewer reps with a 50%
# margin.  The CI job is additionally non-blocking — see
# .github/workflows/ci.yml.
SMOKEREPS ?= 15
SMOKESHARDREPS ?= 3
bench-smoke:
	@rm -f BENCH_smoke.json
	@$(GO) run ./cmd/aladdin-sim -reps $(SMOKEREPS) -machines 384 -factor 50 -bench-out BENCH_smoke.json -bench-label small
	@$(GO) run ./cmd/aladdin-sim -reps $(SMOKESHARDREPS) -machines 10000 -factor 1 -shards 8 -bench-out BENCH_smoke.json -bench-label large-shard8
	@for spec in "small 125" "large-shard8 150"; do \
		set -- $$spec; label=$$1; pct=$$2; \
		base="$$(grep "\"label\":\"$$label\"" BENCH_search.json | sed 's/.*"ns_per_container":\([0-9]*\).*/\1/')"; \
		now="$$(grep "\"label\":\"$$label\"" BENCH_smoke.json | sed 's/.*"ns_per_container":\([0-9]*\).*/\1/')"; \
		if [ -z "$$base" ] || [ -z "$$now" ]; then \
			echo "bench-smoke: missing $$label row (baseline or fresh run)" >&2; exit 1; fi; \
		echo "bench-smoke: $$label ns/container now=$$now baseline=$$base (budget +$$((pct - 100))%)"; \
		if [ "$$now" -gt $$((base * pct / 100)) ]; then \
			echo "bench-smoke: $$label regression vs committed BENCH_search.json" >&2; exit 1; fi; \
	done; \
	rm -f BENCH_smoke.json; \
	echo "bench-smoke: within budget"

# load-smoke drives the multi-tenant HTTP server through the
# concurrent load harness (internal/loadtest) at a small fixed load:
# every response must be 200 or 429 and p99 must stay under a
# deliberately generous tripwire.  It catches gross serving
# regressions (deadlocked batchers, lost replies, stalls), not
# percentage-level slowdowns; the throughput-ratio claim itself lives
# in TestCoalescedThroughput2x.  The CI job is additionally
# non-blocking — see .github/workflows/ci.yml.
load-smoke:
	$(GO) test ./internal/loadtest/ -run 'TestLoadSmoke|TestCoalescedThroughput2x' -count=1 -v

# rebalance-soak runs the long-horizon continuous-rescheduling gate
# (DESIGN.md §15): the online simulation with failures, recoveries,
# churn and budgeted rebalancing cycles, with the full invariant
# Auditor after every failure, recovery and cycle.  SOAKFACTOR is the
# trace scale divisor — smaller means more applications and a longer
# horizon (the in-suite default is 200; CI soaks at 40).
SOAKFACTOR ?= 40
rebalance-soak:
	ALADDIN_SOAK=$(SOAKFACTOR) $(GO) test ./internal/sim/ -run 'TestRunOnlineRebalanceSoak' -count=1 -v
	$(GO) test -race ./internal/core/ -run 'TestShardedConcurrentConsolidateRacingPlace' -count=1

clean:
	rm -f BENCH_search.json BENCH_smoke.json coverage.out
