GO ?= go

.PHONY: build test verify lint fuzz bench cover allocguard clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: build, vet, and the complete test
# suite under the race detector (the parallel sub-cluster sweep makes
# -race load-bearing, not optional).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# lint runs the project's static-analysis gate: gofmt, go vet, and the
# aladdin-vet invariant analyzers (determinism, lockcheck, intcap,
# errflow).  staticcheck and govulncheck run too when installed —
# locally they are optional (no network to fetch them), in CI they are
# installed and mandatory.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/aladdin-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

# cover runs the suite with coverage and prints the per-package and
# total summary.
cover:
	$(GO) test -cover -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# allocguard verifies the disabled-observability fast paths stay
# allocation-free: a nil-sink Tracer.Emit and nil-registry counter
# must cost 0 allocs/op, so uninstrumented schedulers pay nothing.
allocguard:
	@out="$$($(GO) test ./internal/obs/ -run='^$$' -bench='BenchmarkTracerDisabled|BenchmarkCounterDisabled' -benchmem -benchtime=1000x)"; \
	echo "$$out"; \
	if echo "$$out" | grep -E '^Benchmark' | awk '{ if ($$(NF-1) != 0) exit 1 }'; then \
		echo "allocguard: disabled paths are allocation-free"; \
	else \
		echo "allocguard: nil-sink path allocates!" >&2; exit 1; \
	fi

# fuzz gives each invariant fuzz target a short budget beyond its
# committed seed corpus; FUZZTIME=5m for a serious soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzPlace -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzFailRecover -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -run='^$$' -fuzz=FuzzIndexNaiveEquivalence -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/checkpoint/ -run='^$$' -fuzz=FuzzCheckpointRead -fuzztime=$(FUZZTIME)

# bench records the per-container placement cost (ns/container) at the
# small and medium cluster scales as JSON lines in BENCH_search.json,
# plus the medium scale with the naive scan as the A/B baseline.
bench:
	rm -f BENCH_search.json
	$(GO) run ./cmd/aladdin-sim -machines 384 -factor 50 -bench-out BENCH_search.json -bench-label small
	$(GO) run ./cmd/aladdin-sim -machines 1024 -factor 50 -bench-out BENCH_search.json -bench-label medium
	$(GO) run ./cmd/aladdin-sim -machines 1024 -factor 50 -naive-search -bench-out BENCH_search.json -bench-label medium-naive
	@cat BENCH_search.json

clean:
	rm -f BENCH_search.json coverage.out
