GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: build, vet, and the complete test
# suite under the race detector (the parallel sub-cluster sweep makes
# -race load-bearing, not optional).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench records the per-container placement cost (ns/container) at the
# small and medium cluster scales as JSON lines in BENCH_search.json,
# plus the medium scale with the naive scan as the A/B baseline.
bench:
	rm -f BENCH_search.json
	$(GO) run ./cmd/aladdin-sim -machines 384 -factor 50 -bench-out BENCH_search.json -bench-label small
	$(GO) run ./cmd/aladdin-sim -machines 1024 -factor 50 -bench-out BENCH_search.json -bench-label medium
	$(GO) run ./cmd/aladdin-sim -machines 1024 -factor 50 -naive-search -bench-out BENCH_search.json -bench-label medium-naive
	@cat BENCH_search.json

clean:
	rm -f BENCH_search.json
